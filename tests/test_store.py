"""Tests for the bit-packed, content-addressed world store.

Pins the PR-3 invariants:

* packed masks roundtrip bit-exactly and use ~1/8 of the boolean bytes;
* a warm run of the same ``(graph, seed, backend, chunk_size)`` pool
  performs **zero** new mask sampling and returns bit-identical labels
  (the cross-run oracle-reuse acceptance criterion);
* the cache-invalidation contract: mutating edge probabilities, seed,
  backend, or chunk size misses the cache;
* disk pools persist across store instances, resume progressive
  sampling mid-schedule, and treat corruption as a miss.
"""

import json

import numpy as np
import pytest

from repro.exceptions import WorldStoreError
from repro.graph.uncertain_graph import UncertainGraph
from repro.sampling.oracle import MonteCarloOracle
from repro.sampling.parallel import ParallelSampler
from repro.sampling.store import (
    WorldStore,
    pack_mask_columns,
    pack_masks,
    packed_words,
    pool_fingerprint,
    unpack_mask_columns,
    unpack_masks,
)


@pytest.fixture
def graph():
    rng = np.random.default_rng(0)
    edges = []
    for _ in range(200):
        u, v = rng.choice(60, size=2, replace=False)
        edges.append((int(u), int(v), float(rng.uniform(0.05, 0.95))))
    return UncertainGraph.from_edges(edges, nodes=range(60), merge="first")


class SamplerSpy:
    """Counts ParallelSampler.sample_chunk calls and sampled worlds."""

    def __init__(self, monkeypatch):
        self.calls = 0
        self.worlds = 0
        original = ParallelSampler.sample_chunk

        def spy(sampler, root, start, count):
            self.calls += 1
            self.worlds += count
            return original(sampler, root, start, count)

        monkeypatch.setattr(ParallelSampler, "sample_chunk", spy)


class TestPacking:
    @pytest.mark.parametrize("r,m", [(0, 5), (1, 1), (3, 63), (4, 64), (5, 65), (7, 200), (2, 0)])
    def test_roundtrip(self, r, m):
        rng = np.random.default_rng(r * 100 + m)
        masks = rng.random((r, m)) < 0.5
        packed = pack_masks(masks)
        assert packed.dtype == np.uint64
        assert packed.shape == (r, packed_words(m))
        assert np.array_equal(unpack_masks(packed, m), masks)

    def test_eight_fold_memory_cut(self):
        # Acceptance criterion: packed bytes <= ~1/8 of boolean bytes.
        # 640 edges = exactly 10 words, so the ratio is exactly 8 here.
        masks = np.random.default_rng(1).random((256, 640)) < 0.3
        packed = pack_masks(masks)
        assert packed.nbytes * 8 == masks.nbytes
        # Padding never costs more than 7 bytes per row.
        ragged = np.random.default_rng(2).random((64, 129)) < 0.3
        assert pack_masks(ragged).nbytes <= ragged.nbytes / 8 + 8 * 64

    def test_bad_shapes(self):
        with pytest.raises(ValueError):
            pack_masks(np.zeros(4, dtype=bool))
        with pytest.raises(ValueError):
            unpack_masks(np.zeros((2, 2), dtype=np.uint64), 200)

    def test_memmap_roundtrip(self, tmp_path):
        masks = np.random.default_rng(3).random((10, 100)) < 0.4
        packed = pack_masks(masks)
        path = tmp_path / "masks.u64"
        path.write_bytes(packed.tobytes())
        view = np.memmap(path, dtype=np.uint64, mode="r", shape=packed.shape)
        assert np.array_equal(unpack_masks(view[3:7], 100), masks[3:7])


class TestColumnarPacking:
    """The store's edge-major layout: one row per edge."""

    @pytest.mark.parametrize("r,m", [(0, 5), (1, 1), (63, 3), (64, 4), (65, 5), (200, 7), (2, 0)])
    def test_roundtrip(self, r, m):
        rng = np.random.default_rng(r * 100 + m)
        masks = rng.random((r, m)) < 0.5
        cols = pack_mask_columns(masks)
        assert cols.dtype == np.uint64
        assert cols.shape == (m, packed_words(r))
        assert np.array_equal(unpack_mask_columns(cols, r), masks)

    def test_columns_are_contiguous_rows(self):
        """Edge e's bits are row e — the delta-update access pattern."""
        masks = np.random.default_rng(1).random((128, 5)) < 0.5
        cols = pack_mask_columns(masks)
        for e in range(5):
            row = unpack_mask_columns(cols[e:e + 1], 128)[:, 0]
            assert np.array_equal(row, masks[:, e])

    def test_eight_fold_memory_cut(self):
        masks = np.random.default_rng(2).random((640, 50)) < 0.3
        cols = pack_mask_columns(masks)
        assert cols.nbytes * 8 == masks.nbytes  # 640 worlds = 10 words exactly

    def test_bad_shapes(self):
        with pytest.raises(ValueError):
            pack_mask_columns(np.zeros(4, dtype=bool))
        with pytest.raises(ValueError):
            unpack_mask_columns(np.zeros((2, 2), dtype=np.uint64), 200)
        with pytest.raises(ValueError):
            unpack_mask_columns(np.zeros((0, 2), dtype=np.uint64), 200)


class TestFingerprint:
    def test_deterministic(self, graph):
        a = pool_fingerprint(graph, 7, "unionfind", 512)
        b = pool_fingerprint(graph, 7, "unionfind", 512)
        assert a == b and len(a) == 64

    def test_seed_sequence_equivalent_to_int(self, graph):
        assert pool_fingerprint(graph, 7, "scipy", 64) == pool_fingerprint(
            graph, np.random.SeedSequence(7), "scipy", 64
        )

    def test_every_input_invalidates(self, graph):
        base = pool_fingerprint(graph, 7, "unionfind", 512)
        assert pool_fingerprint(graph, 8, "unionfind", 512) != base
        assert pool_fingerprint(graph, 7, "scipy", 512) != base
        assert pool_fingerprint(graph, 7, "unionfind", 256) != base

    def test_probability_mutation_invalidates(self, graph):
        base = pool_fingerprint(graph, 7, "unionfind", 512)
        prob = graph.edge_prob.copy()
        prob[0] = min(1.0, prob[0] + 1e-9)
        mutated = UncertainGraph(
            graph.n_nodes, graph.edge_src, graph.edge_dst, prob, validate=False
        )
        assert pool_fingerprint(mutated, 7, "unionfind", 512) != base

    def test_edge_mutation_invalidates(self, graph):
        base = pool_fingerprint(graph, 7, "unionfind", 512)
        sub = graph.subgraph(np.arange(graph.n_nodes - 1))
        assert pool_fingerprint(sub, 7, "unionfind", 512) != base


class TestWorldStoreUnit:
    def test_register_read_append(self, graph):
        store = WorldStore()
        digest = store.register(graph, 7, "scipy", 64)
        assert store.count(digest) == 0
        masks = np.random.default_rng(0).random((10, graph.n_edges)) < 0.5
        labels = np.zeros((10, graph.n_nodes), dtype=np.int32)
        assert store.append(digest, 0, pack_mask_columns(masks), labels) == 10
        got_packed, got_labels = store.read(digest, 2, 9)
        assert np.array_equal(unpack_mask_columns(got_packed, 7), masks[2:9])
        assert got_labels.shape == (7, graph.n_nodes)

    def test_overlapping_append_trimmed(self, graph):
        store = WorldStore()
        digest = store.register(graph, 7, "scipy", 64)
        masks = np.random.default_rng(0).random((12, graph.n_edges)) < 0.5
        labels = np.arange(12 * graph.n_nodes, dtype=np.int32).reshape(12, -1)
        store.append(digest, 0, pack_mask_columns(masks[:10]), labels[:10])
        # Re-appending worlds 5..11 (5 overlapping + 2 new) keeps 12 total.
        assert store.append(digest, 5, pack_mask_columns(masks[5:]), labels[5:]) == 12
        assert store.count(digest) == 12
        got_packed, got_labels = store.read(digest, 0, 12)
        assert np.array_equal(unpack_mask_columns(got_packed, 12), masks)
        assert np.array_equal(got_labels, labels)

    def test_gap_append_rejected(self, graph):
        store = WorldStore()
        digest = store.register(graph, 7, "scipy", 64)
        packed = pack_mask_columns(np.zeros((1, graph.n_edges), dtype=bool))
        with pytest.raises(WorldStoreError):
            store.append(digest, 5, packed, np.zeros((1, graph.n_nodes), dtype=np.int32))

    def test_read_out_of_range(self, graph):
        store = WorldStore()
        digest = store.register(graph, 7, "scipy", 64)
        with pytest.raises(WorldStoreError):
            store.read(digest, 0, 1)

    def test_unknown_digest(self):
        with pytest.raises(WorldStoreError):
            WorldStore().count("deadbeef")

    def test_info_and_clear(self, graph, tmp_path):
        store = WorldStore(tmp_path / "cache")
        with MonteCarloOracle(graph, seed=3, chunk_size=32, store=store) as oracle:
            oracle.ensure_samples(64)
        (pool,) = store.info()
        assert pool.n_worlds == 64
        assert pool.persistent
        # 64 worlds drawn in two 32-world blocks: each block packs every
        # edge's column into packed_words(32) = 1 word.
        assert pool.n_blocks == 2
        assert pool.mask_bytes == 2 * graph.n_edges * packed_words(32) * 8
        assert pool.label_bytes == 64 * graph.n_nodes * 4
        assert store.clear() == 1
        assert store.info() == []


class TestOracleReuse:
    def test_warm_run_zero_sampling_bit_identical(self, graph, monkeypatch):
        """The acceptance criterion: a cached second run samples nothing."""
        store = WorldStore()
        with MonteCarloOracle(graph, seed=11, chunk_size=64, store=store) as cold:
            cold.ensure_samples(200)
            cold_labels = cold.component_labels
            assert cold.cache_stats == {"worlds_cached": 0, "worlds_sampled": 200}

        spy = SamplerSpy(monkeypatch)
        with MonteCarloOracle(graph, seed=11, chunk_size=64, store=store) as warm:
            warm.ensure_samples(200)
            assert spy.calls == 0
            assert spy.worlds == 0
            assert warm.cache_stats == {"worlds_cached": 200, "worlds_sampled": 0}
            assert np.array_equal(warm.component_labels, cold_labels)

    def test_mid_schedule_resume(self, graph, monkeypatch):
        """A warm oracle resumes progressive sampling where the cache ends."""
        store = WorldStore()
        with MonteCarloOracle(graph, seed=5, chunk_size=64, store=store) as cold:
            cold.ensure_samples(100)

        spy = SamplerSpy(monkeypatch)
        with MonteCarloOracle(graph, seed=5, chunk_size=64, store=store) as warm:
            warm.ensure_samples(300)
            assert spy.worlds == 200  # only the uncached tail is drawn
        with MonteCarloOracle(graph, seed=5, chunk_size=64) as fresh:
            fresh.ensure_samples(300)
            with MonteCarloOracle(graph, seed=5, chunk_size=64, store=store) as check:
                check.ensure_samples(300)
                assert np.array_equal(check.component_labels, fresh.component_labels)

    def test_queries_identical_with_and_without_store(self, graph):
        store = WorldStore()
        with MonteCarloOracle(graph, seed=2, chunk_size=32, store=store) as a:
            a.ensure_samples(96)
        with MonteCarloOracle(graph, seed=2, chunk_size=32, store=store) as warm, \
                MonteCarloOracle(graph, seed=2, chunk_size=32) as plain:
            warm.ensure_samples(96)
            plain.ensure_samples(96)
            assert warm.connection(0, 1) == plain.connection(0, 1)
            assert np.array_equal(
                warm.connection_to_all(3, depth=2), plain.connection_to_all(3, depth=2)
            )
            assert np.array_equal(
                warm.pairwise_matrix([0, 1, 2]), plain.pairwise_matrix([0, 1, 2])
            )

    def test_cache_misses_on_changed_inputs(self, graph, monkeypatch):
        """Invalidation contract end to end: any input change resamples."""
        store = WorldStore()
        with MonteCarloOracle(graph, seed=1, chunk_size=64, store=store) as cold:
            cold.ensure_samples(64)

        prob = graph.edge_prob.copy()
        prob[0] = prob[0] * 0.5
        mutated = UncertainGraph(
            graph.n_nodes, graph.edge_src, graph.edge_dst, prob, validate=False
        )
        for variant in (
            dict(graph=mutated, seed=1, chunk_size=64),        # edge prob changed
            dict(graph=graph, seed=2, chunk_size=64),          # seed changed
            dict(graph=graph, seed=1, chunk_size=32),          # chunk size changed
            dict(graph=graph, seed=1, chunk_size=64, backend="unionfind"),
        ):
            spy = SamplerSpy(monkeypatch)
            kwargs = dict(variant)
            target = kwargs.pop("graph")
            with MonteCarloOracle(target, store=store, **kwargs) as oracle:
                oracle.ensure_samples(64)
                assert spy.worlds == 64, f"variant {variant} should miss the cache"

    def test_store_and_cache_dir_mutually_exclusive(self, graph, tmp_path):
        with pytest.raises(ValueError):
            MonteCarloOracle(graph, store=WorldStore(), cache_dir=tmp_path)

    def test_packed_pool_memory(self, graph):
        with MonteCarloOracle(graph, seed=0, chunk_size=64) as oracle:
            oracle.ensure_samples(256)
            boolean_bytes = 256 * graph.n_edges  # the pre-PR-3 representation
            assert oracle.packed_mask_nbytes <= boolean_bytes / 8 + 8 * 256


class TestDiskPersistence:
    def test_cross_instance_reuse(self, graph, tmp_path, monkeypatch):
        cache = tmp_path / "worlds"
        with MonteCarloOracle(graph, seed=9, chunk_size=64, cache_dir=cache) as cold:
            cold.ensure_samples(128)
            cold_labels = cold.component_labels

        # A brand-new store instance over the same directory (as a new
        # process would build) serves the pool without sampling.
        spy = SamplerSpy(monkeypatch)
        with MonteCarloOracle(graph, seed=9, chunk_size=64, cache_dir=cache) as warm:
            warm.ensure_samples(128)
            assert spy.calls == 0
            assert np.array_equal(warm.component_labels, cold_labels)

    def test_disk_layout(self, graph, tmp_path):
        cache = tmp_path / "worlds"
        with MonteCarloOracle(graph, seed=9, chunk_size=64, cache_dir=cache) as oracle:
            oracle.ensure_samples(100)
            digest = oracle.pool_digest
        pool_dir = cache / digest
        meta = json.loads((pool_dir / "meta.json").read_text())
        assert meta["n_worlds"] == 100
        assert meta["block_counts"] == [64, 36]  # two ensure_samples chunks
        mask_bytes = graph.n_edges * (packed_words(64) + packed_words(36)) * 8
        assert (pool_dir / "masks.u64").stat().st_size == mask_bytes
        assert (pool_dir / "labels.i32").stat().st_size == 100 * graph.n_nodes * 4

    def test_truncated_data_treated_as_miss(self, graph, tmp_path, monkeypatch):
        cache = tmp_path / "worlds"
        with MonteCarloOracle(graph, seed=4, chunk_size=32, cache_dir=cache) as cold:
            cold.ensure_samples(64)
            cold_labels = cold.component_labels
            digest = cold.pool_digest
        masks_path = cache / digest / "masks.u64"
        masks_path.write_bytes(masks_path.read_bytes()[:-8])

        spy = SamplerSpy(monkeypatch)
        with MonteCarloOracle(graph, seed=4, chunk_size=32, cache_dir=cache) as redo:
            redo.ensure_samples(64)
            assert spy.worlds == 64  # corruption cost re-sampling, not wrong data
            assert np.array_equal(redo.component_labels, cold_labels)

    def test_corruption_after_scan_still_treated_as_miss(self, graph, tmp_path, monkeypatch):
        """register() re-validates pools that _scan_disk pre-registered."""
        cache = tmp_path / "worlds"
        with MonteCarloOracle(graph, seed=4, chunk_size=32, cache_dir=cache) as cold:
            cold.ensure_samples(64)
            digest = cold.pool_digest
        labels_path = cache / digest / "labels.i32"
        labels_path.write_bytes(labels_path.read_bytes()[:-4])

        store = WorldStore(cache)
        store.info()  # scans (and registers) the now-corrupt pool
        spy = SamplerSpy(monkeypatch)
        with MonteCarloOracle(graph, seed=4, chunk_size=32, store=store) as redo:
            redo.ensure_samples(64)  # must reset and resample, not crash
            assert spy.worlds == 64

    def test_clear_removes_unrecognized_pool_dirs(self, graph, tmp_path):
        """clear() is the recovery tool: it sweeps corrupt/old-format pools."""
        cache = tmp_path / "worlds"
        with MonteCarloOracle(graph, seed=4, chunk_size=32, cache_dir=cache) as cold:
            cold.ensure_samples(32)
            digest = cold.pool_digest
        meta_path = cache / digest / "meta.json"
        meta = json.loads(meta_path.read_text())
        meta["format"] = 0  # an old format version _scan_disk rejects
        meta_path.write_text(json.dumps(meta))

        store = WorldStore(cache)
        assert store.info() == []  # unrecognized, not listed
        assert store.clear() == 1  # ... but still removed
        assert not (cache / digest).exists()

    def test_stale_writer_append_does_not_misalign(self, graph, tmp_path):
        """A writer that registered a cold pool must trim against the
        on-disk count at append time: two processes racing on a cold
        cache used to double-append rows 0..n at file rows n..2n,
        silently serving wrong worlds to every later reader."""
        cache = tmp_path / "worlds"
        stale = WorldStore(cache)
        digest = stale.register(graph, 13, "scipy", 64)  # sees count=0

        with MonteCarloOracle(graph, seed=13, chunk_size=64, cache_dir=cache) as a:
            a.ensure_samples(64)  # "process A" persists worlds 0..63

        # The stale writer now appends worlds 0..127 from its own view.
        with MonteCarloOracle(graph, seed=13, chunk_size=128) as b:
            b.ensure_samples(128)
            masks = np.concatenate(
                [
                    unpack_mask_columns(cols, lab.shape[0])
                    for cols, lab in zip(b._packed_chunks, b._label_chunks, strict=True)
                ]
            )
            labels = b.component_labels
        assert stale.append(digest, 0, pack_mask_columns(masks), labels) == 128

        with MonteCarloOracle(graph, seed=13, chunk_size=64, cache_dir=cache) as warm:
            warm.ensure_samples(128)
            assert warm.cache_stats["worlds_sampled"] == 0
            assert np.array_equal(warm.component_labels, labels)

    def test_disk_append_after_external_clear_is_dropped(self, graph, tmp_path):
        """Clearing a pool under a live writer drops its writes (best
        effort) instead of raising or leaving a gap on disk."""
        cache = tmp_path / "worlds"
        store = WorldStore(cache)
        digest = store.register(graph, 6, "scipy", 32)
        packed = pack_mask_columns(np.zeros((32, graph.n_edges), dtype=bool))
        labels = np.zeros((32, graph.n_nodes), dtype=np.int32)
        store.append(digest, 0, packed, labels)
        WorldStore(cache).clear()  # "another process" clears the pool
        assert store.append(digest, 32, packed, labels) == 0
        assert store.count(digest) == 0

    def test_clear_never_touches_non_pool_dirs(self, graph, tmp_path):
        """clear() must not delete directories that merely contain a
        file named meta.json — only 64-hex digest-named pool dirs."""
        cache = tmp_path / "worlds"
        with MonteCarloOracle(graph, seed=4, chunk_size=32, cache_dir=cache) as cold:
            cold.ensure_samples(32)
        bystander = cache / "my-dataset"
        bystander.mkdir()
        (bystander / "meta.json").write_text('{"unrelated": true}')
        (bystander / "precious.txt").write_text("do not delete")
        assert WorldStore(cache).clear() == 1  # the pool, not the bystander
        assert (bystander / "precious.txt").exists()

    def test_read_failure_mid_warm_load_falls_back_to_sampling(
        self, graph, tmp_path, monkeypatch
    ):
        """A pool vanishing between count() and read() (cross-process
        clear) must cost re-sampling, not abort the run."""
        cache = tmp_path / "worlds"
        with MonteCarloOracle(graph, seed=4, chunk_size=32, cache_dir=cache) as cold:
            cold.ensure_samples(64)
            cold_labels = cold.component_labels

        def raising(self, digest, start, stop):
            raise FileNotFoundError()

        monkeypatch.setattr(WorldStore, "read", raising)
        monkeypatch.setattr(WorldStore, "read_labels", raising)
        spy = SamplerSpy(monkeypatch)
        with MonteCarloOracle(graph, seed=4, chunk_size=32, cache_dir=cache) as redo:
            redo.ensure_samples(64)
            assert spy.worlds == 64
            assert np.array_equal(redo.component_labels, cold_labels)

    def test_garbage_meta_treated_as_miss(self, graph, tmp_path, monkeypatch):
        cache = tmp_path / "worlds"
        with MonteCarloOracle(graph, seed=4, chunk_size=32, cache_dir=cache) as cold:
            cold.ensure_samples(32)
            digest = cold.pool_digest
        (cache / digest / "meta.json").write_text("{not json")

        spy = SamplerSpy(monkeypatch)
        with MonteCarloOracle(graph, seed=4, chunk_size=32, cache_dir=cache) as redo:
            redo.ensure_samples(32)
            assert spy.worlds == 32


class TestClusteringReuse:
    def test_mcp_then_acp_share_pool(self, graph, monkeypatch):
        """An mcp -> acp pipeline with a shared store resamples only growth."""
        from repro.core.acp import acp_clustering
        from repro.core.mcp import mcp_clustering

        store = WorldStore()
        spy = SamplerSpy(monkeypatch)
        mcp = mcp_clustering(graph, 3, seed=0, chunk_size=64, store=store)
        sampled_by_mcp = spy.worlds
        assert sampled_by_mcp > 0
        acp = acp_clustering(graph, 3, seed=0, chunk_size=64, store=store)
        assert spy.worlds - sampled_by_mcp <= max(
            0, acp.samples_used - sampled_by_mcp
        )  # acp re-drew nothing mcp already had
        assert mcp.clustering.covers_all

    def test_repeated_mcp_is_warm_and_identical(self, graph, monkeypatch):
        from repro.core.mcp import mcp_clustering

        store = WorldStore()
        first = mcp_clustering(graph, 3, seed=0, chunk_size=64, store=store)
        spy = SamplerSpy(monkeypatch)
        second = mcp_clustering(graph, 3, seed=0, chunk_size=64, store=store)
        assert spy.worlds == 0
        assert np.array_equal(
            first.clustering.assignment, second.clustering.assignment
        )
        assert first.min_prob_estimate == second.min_prob_estimate


class TestLazyMaskLoading:
    """Warm labels load eagerly; packed masks stay in the store until a
    depth-limited query needs them."""

    def test_warm_unbounded_queries_never_read_masks(self, graph, monkeypatch):
        store = WorldStore()
        with MonteCarloOracle(graph, seed=21, chunk_size=64, store=store) as cold:
            cold.ensure_samples(128)

        def forbidden(self, digest, start, stop):  # pragma: no cover - failure path
            raise AssertionError("unbounded queries must not read mask bytes")

        monkeypatch.setattr(WorldStore, "read", forbidden)
        with MonteCarloOracle(graph, seed=21, chunk_size=64, store=store) as warm:
            warm.ensure_samples(128)
            warm.connection(0, 1)
            warm.pairwise_matrix([0, 1, 2])
            assert warm.packed_mask_nbytes == 0  # nothing materialized

    def test_warm_depth_query_materializes_masks(self, graph):
        store = WorldStore()
        with MonteCarloOracle(graph, seed=22, chunk_size=64, store=store) as cold:
            cold.ensure_samples(128)
            cold_depth = cold.connection_to_all(0, depth=2)
        with MonteCarloOracle(graph, seed=22, chunk_size=64, store=store) as warm:
            warm.ensure_samples(128)
            assert np.array_equal(warm.connection_to_all(0, depth=2), cold_depth)
            assert warm.packed_mask_nbytes > 0

    def test_depth_query_after_pool_clear_resamples(self, graph):
        """A cleared pool between the warm load and the first depth query
        costs a deterministic resample, never a crash."""
        store = WorldStore()
        with MonteCarloOracle(graph, seed=23, chunk_size=64, store=store) as cold:
            cold.ensure_samples(128)
            cold_depth = cold.connection_to_all(3, depth=2)
        with MonteCarloOracle(graph, seed=23, chunk_size=64, store=store) as warm:
            warm.ensure_samples(128)
            store.clear()  # pool evicted before any mask was touched
            assert np.array_equal(warm.connection_to_all(3, depth=2), cold_depth)
