"""Tests for .uel edge-list reading and writing."""

import pytest

from repro import GraphValidationError, read_uncertain_graph, write_uncertain_graph
from repro.graph.uncertain_graph import UncertainGraph


class TestRoundtrip:
    def test_roundtrip_preserves_graph(self, tmp_path, two_triangles):
        path = tmp_path / "graph.uel"
        write_uncertain_graph(two_triangles, path)
        back = read_uncertain_graph(path, numeric_labels=True)
        assert back.n_nodes == two_triangles.n_nodes
        assert back.n_edges == two_triangles.n_edges
        for u, v, p in two_triangles.edge_list():
            assert back.edge_probability_between(
                back.index_of(u), back.index_of(v)
            ) == pytest.approx(p)

    def test_roundtrip_string_labels(self, tmp_path):
        g = UncertainGraph.from_edges([("alice", "bob", 0.25)])
        path = tmp_path / "named.uel"
        write_uncertain_graph(g, path)
        back = read_uncertain_graph(path)
        assert set(back.node_labels) == {"alice", "bob"}

    def test_header_comment_written(self, tmp_path, path4):
        path = tmp_path / "g.uel"
        write_uncertain_graph(path4, path, header="my dataset\nsecond line")
        text = path.read_text()
        assert text.startswith("# my dataset\n# second line\n")
        assert "# nodes=4 edges=3" in text


class TestReading:
    def test_comments_and_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "g.uel"
        path.write_text("# comment\n\n0 1 0.5\n\n# another\n1 2 0.75\n")
        g = read_uncertain_graph(path, numeric_labels=True)
        assert g.n_edges == 2

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.uel"
        path.write_text("0 1\n")
        with pytest.raises(GraphValidationError, match="line 1"):
            read_uncertain_graph(path)

    def test_bad_probability_raises(self, tmp_path):
        path = tmp_path / "bad.uel"
        path.write_text("0 1 high\n")
        with pytest.raises(GraphValidationError, match="not a number"):
            read_uncertain_graph(path)

    @pytest.mark.parametrize("token", ["1.5", "-0.1", "nan", "inf", "-inf", "2e3"])
    def test_out_of_range_probability_raises_with_line(self, tmp_path, token):
        path = tmp_path / "bad.uel"
        path.write_text(f"0 1 0.5\n1 2 {token}\n")
        with pytest.raises(GraphValidationError, match=r"line 2.*outside \[0, 1\]"):
            read_uncertain_graph(path)

    def test_zero_probability_raises_with_line(self, tmp_path):
        path = tmp_path / "bad.uel"
        path.write_text("0 1 0.0\n")
        with pytest.raises(GraphValidationError, match="line 1.*probability-0"):
            read_uncertain_graph(path)

    def test_parse_text_validates_like_files(self):
        from repro.graph.io import parse_uncertain_graph_text

        graph = parse_uncertain_graph_text("a b 0.5\nb c 1\n")
        assert graph.n_edges == 2
        with pytest.raises(GraphValidationError, match="line 2"):
            parse_uncertain_graph_text("a b 0.5\na c nan\n")

    def test_numeric_labels_rejects_strings(self, tmp_path):
        path = tmp_path / "bad.uel"
        path.write_text("a b 0.5\n")
        with pytest.raises(GraphValidationError, match="not an integer"):
            read_uncertain_graph(path, numeric_labels=True)

    def test_duplicate_edges_with_merge(self, tmp_path):
        path = tmp_path / "dup.uel"
        path.write_text("0 1 0.5\n1 0 0.9\n")
        with pytest.raises(GraphValidationError):
            read_uncertain_graph(path, numeric_labels=True)
        g = read_uncertain_graph(path, numeric_labels=True, merge="max")
        assert g.n_edges == 1
        assert g.edge_prob[0] == pytest.approx(0.9)


class TestNodeOrderDirective:
    """#% node-order pins numbering across write/read roundtrips."""

    def test_roundtrip_preserves_numbering_and_fingerprint(self, tmp_path):
        import numpy as np

        from repro.sampling.store import pool_fingerprint

        graph = UncertainGraph.from_edges(
            [("c", "a", 0.5), ("a", "b", 0.25), ("b", "d", 0.75)]
        )
        path = tmp_path / "g.uel"
        write_uncertain_graph(graph, path)
        assert "#% node-order:" in path.read_text()
        reread = read_uncertain_graph(path)
        assert reread.node_labels == graph.node_labels
        assert np.array_equal(reread.edge_src, graph.edge_src)
        assert np.array_equal(reread.edge_dst, graph.edge_dst)
        assert pool_fingerprint(reread, 0, "scipy", 512) == pool_fingerprint(
            graph, 0, "scipy", 512
        )

    def test_directive_preserves_isolated_nodes(self, tmp_path):
        graph = UncertainGraph(4, [0], [1], [0.5])
        path = tmp_path / "g.uel"
        write_uncertain_graph(graph, path)
        reread = read_uncertain_graph(path)
        assert reread.n_nodes == 4  # nodes 2 and 3 survive despite no edges

    def test_directive_wraps_long_label_lists(self, tmp_path):
        import numpy as np

        rng = np.random.default_rng(0)
        edges = [(i, i + 1, 0.5) for i in range(199)]
        graph = UncertainGraph.from_edges(edges, nodes=rng.permutation(200).tolist())
        path = tmp_path / "g.uel"
        write_uncertain_graph(graph, path)
        directive_lines = [
            line for line in path.read_text().splitlines()
            if line.startswith("#% node-order:")
        ]
        assert len(directive_lines) > 1  # wrapped
        assert read_uncertain_graph(path).node_labels == tuple(
            str(label) for label in graph.node_labels
        )

    def test_files_without_directive_parse_as_before(self, tmp_path):
        path = tmp_path / "legacy.uel"
        path.write_text("# a comment\nb a 0.5\na c 0.25\n")
        graph = read_uncertain_graph(path)
        assert graph.node_labels == ("b", "a", "c")  # first-seen order

    def test_numeric_labels_directive(self, tmp_path):
        path = tmp_path / "g.uel"
        path.write_text("#% node-order: 5 3 1\n3 5 0.5\n")
        graph = read_uncertain_graph(path, numeric_labels=True)
        assert graph.node_labels == (5, 3, 1)
        bad = tmp_path / "bad.uel"
        bad.write_text("#% node-order: a b\na b 0.5\n")
        with pytest.raises(GraphValidationError, match="node-order"):
            read_uncertain_graph(bad, numeric_labels=True)
