"""Tests for the Clustering dataclass and completion."""

import numpy as np
import pytest

from repro import Clustering, ClusteringError
from repro.core.clustering import UNCOVERED, complete_clustering


def make_clustering(assignment, centers, probs=None, n=None):
    assignment = np.asarray(assignment)
    n = n if n is not None else len(assignment)
    return Clustering(n, np.asarray(centers), assignment, probs)


class TestValidation:
    def test_valid_full_clustering(self):
        c = make_clustering([0, 0, 1, 1], [0, 2])
        assert c.k == 2
        assert c.covers_all

    def test_center_must_be_in_own_cluster(self):
        with pytest.raises(ClusteringError, match="own cluster"):
            make_clustering([1, 0, 1, 1], [0, 2])

    def test_centers_must_be_distinct(self):
        with pytest.raises(ClusteringError, match="distinct"):
            make_clustering([0, 0, 0], [1, 1])

    def test_centers_in_range(self):
        with pytest.raises(ClusteringError):
            make_clustering([0, 0], [5])

    def test_assignment_values_in_range(self):
        with pytest.raises(ClusteringError):
            make_clustering([0, 3], [0, 1])

    def test_assignment_shape(self):
        with pytest.raises(ClusteringError):
            Clustering(5, np.array([0]), np.array([0, 0]))

    def test_needs_a_center(self):
        with pytest.raises(ClusteringError):
            Clustering(2, np.array([], dtype=int), np.array([-1, -1]))

    def test_probability_bounds(self):
        with pytest.raises(ClusteringError):
            make_clustering([0, 0], [0], probs=[0.5, 1.5])


class TestAccessors:
    def test_partial_cover_counts(self):
        c = make_clustering([0, UNCOVERED, 0, UNCOVERED], [0])
        assert c.n_covered == 2
        assert not c.covers_all
        assert c.covered_mask.tolist() == [True, False, True, False]

    def test_clusters_listing(self):
        c = make_clustering([0, 1, 0, UNCOVERED, 1], [0, 1])
        clusters = c.clusters()
        assert [sorted(m.tolist()) for m in clusters] == [[0, 2], [1, 4]]

    def test_cluster_sizes(self):
        c = make_clustering([0, 1, 0, UNCOVERED, 1], [0, 1])
        assert c.cluster_sizes().tolist() == [2, 2]

    def test_empty_cluster_allowed(self):
        # Padding centers can own empty clusters before assignment.
        c = make_clustering([0, 0, 1], [0, 2])
        assert c.cluster_sizes().tolist() == [2, 1]

    def test_center_of(self):
        c = make_clustering([0, 1, 0, 1], [0, 1])
        assert c.center_of(2) == 0
        assert c.center_of(3) == 1

    def test_center_of_uncovered_raises(self):
        c = make_clustering([0, UNCOVERED], [0])
        with pytest.raises(ClusteringError, match="uncovered"):
            c.center_of(1)

    def test_repr(self):
        c = make_clustering([0, UNCOVERED], [0])
        assert "covered=1/2" in repr(c)


class TestObjectives:
    def test_min_prob_over_covered(self):
        c = make_clustering([0, 0, UNCOVERED], [0], probs=[1.0, 0.4, 0.0])
        assert c.min_prob() == pytest.approx(0.4)

    def test_avg_prob_counts_uncovered_as_zero(self):
        c = make_clustering([0, 0, UNCOVERED], [0], probs=[1.0, 0.5, 0.9])
        assert c.avg_prob() == pytest.approx((1.0 + 0.5 + 0.0) / 3)

    def test_objectives_require_probs(self):
        c = make_clustering([0, 0], [0])
        with pytest.raises(ClusteringError):
            c.min_prob()
        with pytest.raises(ClusteringError):
            c.avg_prob()


class TestRelabel:
    def test_relabel_by_size(self):
        c = make_clustering([0, 1, 1, 1], [0, 1], probs=[1.0, 1.0, 0.5, 0.6])
        relabelled = c.relabel_by_size()
        assert relabelled.cluster_sizes().tolist() == [3, 1]
        assert relabelled.centers.tolist() == [1, 0]
        # Objective values are invariant under relabelling.
        assert relabelled.avg_prob() == pytest.approx(c.avg_prob())


class TestCompletion:
    def test_assigns_uncovered_to_best_center(self):
        c = make_clustering([0, 1, UNCOVERED], [0, 1], probs=[1.0, 1.0, 0.0])
        rows = np.array([[1.0, 0.0, 0.2], [0.0, 1.0, 0.7]])
        completed = complete_clustering(c, rows)
        assert completed.covers_all
        assert completed.assignment[2] == 1
        assert completed.center_connection[2] == pytest.approx(0.7)

    def test_full_clustering_is_returned_unchanged(self):
        c = make_clustering([0, 0], [0], probs=[1.0, 0.5])
        assert complete_clustering(c, np.ones((1, 2))) is c

    def test_row_shape_checked(self):
        c = make_clustering([0, UNCOVERED], [0])
        with pytest.raises(ClusteringError):
            complete_clustering(c, np.ones((2, 2)))

    def test_completion_never_decreases_avg_prob(self):
        c = make_clustering([0, 1, UNCOVERED, UNCOVERED], [0, 1], probs=[1, 1, 0, 0])
        rows = np.array([[1.0, 0.0, 0.3, 0.1], [0.0, 1.0, 0.2, 0.4]])
        completed = complete_clustering(c, rows)
        assert completed.avg_prob() >= c.avg_prob()
