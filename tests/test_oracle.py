"""Tests for the Monte Carlo connection-probability oracle."""

import numpy as np
import pytest

from repro import MonteCarloOracle, OracleError, UncertainGraph
from repro.sampling import ExactOracle
from tests.conftest import random_graph


@pytest.fixture
def sampled(two_triangles) -> MonteCarloOracle:
    oracle = MonteCarloOracle(two_triangles, seed=123, chunk_size=64)
    oracle.ensure_samples(4000)
    return oracle


class TestPoolManagement:
    def test_starts_empty(self, two_triangles):
        oracle = MonteCarloOracle(two_triangles, seed=0)
        assert oracle.num_samples == 0

    def test_query_without_samples_raises(self, two_triangles):
        oracle = MonteCarloOracle(two_triangles, seed=0)
        with pytest.raises(OracleError, match="no samples"):
            oracle.connection_to_all(0)

    def test_ensure_grows_monotonically(self, two_triangles):
        oracle = MonteCarloOracle(two_triangles, seed=0, chunk_size=10)
        oracle.ensure_samples(25)
        assert oracle.num_samples == 25
        oracle.ensure_samples(10)  # never shrinks
        assert oracle.num_samples == 25
        oracle.ensure_samples(40)
        assert oracle.num_samples == 40

    def test_max_samples_enforced(self, two_triangles):
        oracle = MonteCarloOracle(two_triangles, seed=0, max_samples=100)
        with pytest.raises(OracleError, match="max_samples"):
            oracle.ensure_samples(101)

    def test_invalid_parameters(self, two_triangles):
        with pytest.raises(ValueError):
            MonteCarloOracle(two_triangles, chunk_size=0)
        with pytest.raises(ValueError):
            MonteCarloOracle(two_triangles, max_samples=0)

    def test_component_labels_shape(self, sampled, two_triangles):
        labels = sampled.component_labels
        assert labels.shape == (4000, two_triangles.n_nodes)

    def test_progressive_growth_is_prefix_stable(self, two_triangles):
        # Growing the pool must keep previously drawn worlds unchanged.
        a = MonteCarloOracle(two_triangles, seed=9, chunk_size=16)
        a.ensure_samples(32)
        first = a.component_labels.copy()
        a.ensure_samples(64)
        assert np.array_equal(a.component_labels[:32], first)


class TestEstimates:
    def test_self_connection_is_one(self, sampled):
        assert sampled.connection(3, 3) == 1.0
        assert sampled.connection_to_all(3)[3] == 1.0

    def test_matches_exact_oracle(self, sampled, two_triangles_oracle):
        for u in range(6):
            estimate = sampled.connection_to_all(u)
            exact = two_triangles_oracle.connection_to_all(u)
            assert np.allclose(estimate, exact, atol=0.04)

    def test_certain_edge_estimated_exactly(self):
        g = UncertainGraph.from_edges([(0, 1, 1.0), (1, 2, 0.5)])
        oracle = MonteCarloOracle(g, seed=0)
        oracle.ensure_samples(200)
        assert oracle.connection(0, 1) == 1.0

    def test_connection_pair_matches_row(self, sampled):
        row = sampled.connection_to_all(0)
        assert sampled.connection(0, 4) == pytest.approx(row[4])

    def test_out_of_range_node(self, sampled):
        with pytest.raises(IndexError):
            sampled.connection_to_all(17)

    def test_determinism_same_seed(self, two_triangles):
        a = MonteCarloOracle(two_triangles, seed=5)
        b = MonteCarloOracle(two_triangles, seed=5)
        a.ensure_samples(500)
        b.ensure_samples(500)
        assert np.array_equal(a.connection_to_all(1), b.connection_to_all(1))

    def test_chunking_does_not_change_estimates(self, two_triangles):
        # Different chunk sizes consume the RNG differently, but the
        # estimator must stay unbiased: both should be near the truth.
        exact = ExactOracle(two_triangles).connection(0, 5)
        for chunk in (7, 100, 2048):
            oracle = MonteCarloOracle(two_triangles, seed=11, chunk_size=chunk)
            oracle.ensure_samples(3000)
            assert oracle.connection(0, 5) == pytest.approx(exact, abs=0.05)


class TestDepthQueries:
    def test_depth_matches_exact(self, sampled, two_triangles_oracle):
        for depth in (1, 2, 3):
            estimate = sampled.connection_to_all(0, depth=depth)
            exact = two_triangles_oracle.connection_to_all(0, depth=depth)
            assert np.allclose(estimate, exact, atol=0.04)

    def test_depth_monotone_in_d(self, sampled):
        shallow = sampled.connection_to_all(0, depth=1)
        deep = sampled.connection_to_all(0, depth=4)
        assert np.all(shallow <= deep + 1e-12)

    def test_depth_bounded_by_unbounded(self, sampled):
        depth_limited = sampled.connection_to_all(0, depth=3)
        unbounded = sampled.connection_to_all(0)
        assert np.all(depth_limited <= unbounded + 1e-12)

    def test_depth_zero_reaches_only_self(self, sampled):
        row = sampled.connection_to_all(2, depth=0)
        expected = np.zeros(6)
        expected[2] = 1.0
        assert np.array_equal(row, expected)

    def test_negative_depth_rejected(self, sampled):
        with pytest.raises(ValueError):
            sampled.connection_to_all(0, depth=-1)


class TestPairwiseMatrix:
    def test_matches_exact(self, sampled, two_triangles_oracle):
        estimate = sampled.pairwise_matrix()
        exact = two_triangles_oracle.pairwise_matrix()
        assert np.allclose(estimate, exact, atol=0.04)

    def test_symmetric_unit_diagonal(self, sampled):
        matrix = sampled.pairwise_matrix()
        assert np.allclose(matrix, matrix.T)
        assert np.allclose(np.diag(matrix), 1.0)

    def test_subset_consistent_with_rows(self, sampled):
        nodes = np.array([1, 4, 5])
        matrix = sampled.pairwise_matrix(nodes)
        for i, u in enumerate(nodes):
            row = sampled.connection_to_all(int(u))
            assert np.allclose(matrix[i], row[nodes])

    def test_depth_variant(self, sampled, two_triangles_oracle):
        estimate = sampled.pairwise_matrix(depth=2)
        exact = two_triangles_oracle.pairwise_matrix(depth=2)
        assert np.allclose(estimate, exact, atol=0.05)

    def test_out_of_range_nodes(self, sampled):
        with pytest.raises(IndexError):
            sampled.pairwise_matrix([0, 99])

    def test_empty_subset(self, sampled):
        assert sampled.pairwise_matrix([]).shape == (0, 0)


class TestStatisticalQuality:
    def test_estimator_is_unbiased_across_seeds(self):
        g = UncertainGraph.from_edges([(0, 1, 0.5), (1, 2, 0.5), (0, 2, 0.5)])
        exact = ExactOracle(g).connection(0, 1)
        estimates = []
        for seed in range(20):
            oracle = MonteCarloOracle(g, seed=seed)
            oracle.ensure_samples(400)
            estimates.append(oracle.connection(0, 1))
        assert np.mean(estimates) == pytest.approx(exact, abs=0.02)

    def test_larger_graph_agrees_with_exact(self):
        rng = np.random.default_rng(2)
        graph = random_graph(10, 0.3, rng, prob_low=0.3)
        exact = ExactOracle(graph)
        oracle = MonteCarloOracle(graph, seed=3)
        oracle.ensure_samples(6000)
        assert np.allclose(
            oracle.pairwise_matrix(), exact.pairwise_matrix(), atol=0.05
        )
