"""Tests for the Markov Cluster algorithm baseline."""

import numpy as np
import pytest

from repro import ClusteringError
from repro.baselines.mcl import _normalize_columns, mcl_clustering
from repro.datasets import planted_partition

import scipy.sparse as sp


class TestNormalization:
    def test_columns_sum_to_one(self):
        matrix = sp.random(10, 10, density=0.4, random_state=0, format="csc")
        matrix.data = np.abs(matrix.data) + 0.1
        normalized = _normalize_columns(matrix)
        sums = np.asarray(normalized.sum(axis=0)).ravel()
        nonzero = sums > 0
        assert np.allclose(sums[nonzero], 1.0)

    def test_zero_columns_stay_zero(self):
        matrix = sp.csc_matrix((3, 3))
        normalized = _normalize_columns(matrix)
        assert normalized.nnz == 0


class TestClusteringBehaviour:
    def test_partitions_all_nodes(self, two_triangles):
        result = mcl_clustering(two_triangles)
        assert result.clustering.covers_all

    def test_finds_the_two_triangles(self, two_triangles):
        result = mcl_clustering(two_triangles, inflation=2.0)
        assignment = result.clustering.assignment
        assert len(set(assignment[:3].tolist())) == 1
        assert len(set(assignment[3:].tolist())) == 1
        assert assignment[0] != assignment[3]

    def test_higher_inflation_gives_no_fewer_clusters(self):
        graph, _ = planted_partition(90, 6, seed=2)
        low = mcl_clustering(graph, inflation=1.3)
        high = mcl_clustering(graph, inflation=2.4)
        assert high.n_clusters >= low.n_clusters

    def test_recovers_planted_partition(self):
        graph, membership = planted_partition(
            60, 3, intra_degree=8.0, inter_degree=0.3,
            intra_prob=(0.8, 1.0), inter_prob=(0.05, 0.1), seed=1,
        )
        result = mcl_clustering(graph, inflation=2.0)
        # Every planted community should be dominated by one cluster.
        agreement = 0
        for community in range(3):
            nodes = np.flatnonzero(membership == community)
            values, counts = np.unique(
                result.clustering.assignment[nodes], return_counts=True
            )
            agreement += counts.max()
        assert agreement >= 0.9 * graph.n_nodes

    def test_deterministic(self, two_triangles):
        a = mcl_clustering(two_triangles)
        b = mcl_clustering(two_triangles)
        assert np.array_equal(a.clustering.assignment, b.clustering.assignment)

    def test_converges_on_small_graph(self, two_triangles):
        result = mcl_clustering(two_triangles)
        assert result.converged
        assert result.n_iterations < 100

    def test_centers_are_members(self, two_triangles):
        result = mcl_clustering(two_triangles)
        clustering = result.clustering
        for i, center in enumerate(clustering.centers):
            assert clustering.assignment[center] == i


class TestParameters:
    def test_inflation_must_exceed_one(self, two_triangles):
        with pytest.raises(ClusteringError):
            mcl_clustering(two_triangles, inflation=1.0)

    def test_expansion_at_least_two(self, two_triangles):
        with pytest.raises(ClusteringError):
            mcl_clustering(two_triangles, expansion=1)

    def test_negative_loop_weight(self, two_triangles):
        with pytest.raises(ClusteringError):
            mcl_clustering(two_triangles, loop_weight=-1.0)

    def test_memory_guard_raises(self):
        graph, _ = planted_partition(120, 2, intra_degree=10.0, seed=0)
        with pytest.raises(MemoryError, match="stored entries"):
            mcl_clustering(graph, inflation=1.2, max_nnz=500)

    def test_memory_guard_disabled(self, two_triangles):
        result = mcl_clustering(two_triangles, max_nnz=None)
        assert result.clustering.covers_all

    def test_expansion_three(self, two_triangles):
        result = mcl_clustering(two_triangles, expansion=3)
        assert result.clustering.covers_all
