"""Concurrent `WorldStore`/oracle access from threads.

The clustering service executes jobs on a thread pool where every
worker builds its own :class:`MonteCarloOracle` against one shared
:class:`WorldStore` — the supported sharing pattern (oracles themselves
are single-threaded).  These tests pin that pattern: concurrent growth,
concurrent warm readers racing a writer, and the service-level
:class:`OracleCache` under thread pressure, for both in-memory and
disk-backed stores.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.graph.uncertain_graph import UncertainGraph
from repro.sampling.oracle import MonteCarloOracle
from repro.sampling.store import WorldStore, packed_words
from repro.service.cache import OracleCache

N_THREADS = 6
POOL = 600


@pytest.fixture
def graph() -> UncertainGraph:
    rng = np.random.default_rng(7)
    edges = []
    for u in range(40):
        for v in rng.choice(40, size=3, replace=False):
            if u < v:
                edges.append((u, int(v), float(rng.uniform(0.05, 0.95))))
    return UncertainGraph.from_edges(edges, merge="max")


def _run_threads(worker, count=N_THREADS):
    errors = []
    barrier = threading.Barrier(count)

    def wrapped(index):
        try:
            barrier.wait(timeout=30)
            worker(index)
        except Exception as error:  # noqa: BLE001 - collected for the assert
            errors.append(error)

    threads = [threading.Thread(target=wrapped, args=(i,)) for i in range(count)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert not errors, errors


@pytest.mark.parametrize("persistent", [False, True])
def test_concurrent_oracles_grow_one_pool_bit_identically(graph, persistent, tmp_path):
    store = WorldStore(tmp_path / "wc") if persistent else WorldStore()
    results = [None] * N_THREADS

    def worker(index):
        with MonteCarloOracle(graph, seed=3, store=store) as oracle:
            oracle.ensure_samples(POOL)
            results[index] = oracle.component_labels.copy()

    _run_threads(worker)
    reference = MonteCarloOracle(graph, seed=3)
    reference.ensure_samples(POOL)
    expected = reference.component_labels
    for labels in results:
        assert np.array_equal(labels, expected)
    (pool,) = store.info()
    assert pool.n_worlds == POOL


def test_warm_readers_race_a_growing_writer(graph):
    store = WorldStore()
    with MonteCarloOracle(graph, seed=5, store=store) as seed_oracle:
        seed_oracle.ensure_samples(128)
    digest = seed_oracle.pool_digest
    stop = threading.Event()

    def writer(_index):
        with MonteCarloOracle(graph, seed=5, store=store) as oracle:
            for target in range(128, POOL + 1, 64):
                oracle.ensure_samples(target)
            oracle.ensure_samples(POOL)
        stop.set()

    def reader(_index):
        while not stop.is_set():
            count = store.count(digest)
            packed, labels = store.read(digest, 0, count)
            assert labels.shape[0] == count
            assert packed.shape == (graph.n_edges, packed_words(count))

    _run_threads(lambda i: writer(i) if i == 0 else reader(i), count=4)
    assert store.count(digest) == POOL


def test_concurrent_mixed_size_requests(graph, tmp_path):
    """Threads asking for different pool sizes still share one prefix."""
    store = WorldStore(tmp_path / "wc")
    sizes = [100, 250, 400, 550, 300, 150]
    results = [None] * len(sizes)

    def worker(index):
        with MonteCarloOracle(graph, seed=11, store=store) as oracle:
            oracle.ensure_samples(sizes[index])
            results[index] = oracle.component_labels.copy()

    _run_threads(worker, count=len(sizes))
    reference = MonteCarloOracle(graph, seed=11)
    reference.ensure_samples(max(sizes))
    expected = reference.component_labels
    for size, labels in zip(sizes, results, strict=True):
        assert labels.shape[0] == size
        assert np.array_equal(labels, expected[:size])
    (pool,) = store.info()
    assert pool.n_worlds == max(sizes)


def test_oracle_cache_concurrent_leases(graph):
    cache = OracleCache(max_bytes=64 << 20)
    estimates = [None] * N_THREADS

    def worker(index):
        with cache.lease(graph, seed=1) as oracle:
            oracle.ensure_samples(256)
            estimates[index] = oracle.connection(0, 1)

    _run_threads(worker)
    assert len(set(estimates)) == 1  # every thread saw the same pool
    stats = cache.stats()
    assert stats["pools"] == 1
    assert stats["leases"] == N_THREADS
    # Exactly one pool's worth of worlds was sampled across all threads
    # (threads may interleave chunk draws, but the store dedupes rows).
    (pool,) = cache.store.info()
    assert pool.n_worlds == 256


def test_info_stable_while_growing(graph):
    store = WorldStore()
    done = threading.Event()

    def writer(_index):
        with MonteCarloOracle(graph, seed=2, store=store) as oracle:
            oracle.ensure_samples(POOL)
        done.set()

    def prober(_index):
        while not done.is_set():
            for pool in store.info():
                assert 0 <= pool.n_worlds <= POOL
                assert pool.mask_bytes >= 0

    _run_threads(lambda i: writer(i) if i == 0 else prober(i), count=3)
