"""Tests for reliability query primitives."""

import numpy as np
import pytest

from repro import ClusteringError, MonteCarloOracle, UncertainGraph
from repro.queries import (
    k_nearest_by_reliability,
    most_reliable_source,
    reliability_histogram,
    reliable_set,
)
from repro.sampling import ExactOracle


class TestKNearest:
    def test_orders_by_probability(self, two_triangles_oracle):
        result = k_nearest_by_reliability(two_triangles_oracle, 0, 3)
        probs = [p for _, p in result]
        assert probs == sorted(probs, reverse=True)
        # Same-triangle nodes first.
        assert {node for node, _ in result[:2]} == {1, 2}

    def test_excludes_source(self, two_triangles_oracle):
        result = k_nearest_by_reliability(two_triangles_oracle, 0, 5)
        assert all(node != 0 for node, _ in result)

    def test_drops_disconnected_by_default(self):
        g = UncertainGraph.from_edges([(0, 1, 0.9)], nodes=range(4))
        oracle = ExactOracle(g)
        result = k_nearest_by_reliability(oracle, 0, 3)
        assert result == [(1, pytest.approx(0.9))]

    def test_include_disconnected(self):
        g = UncertainGraph.from_edges([(0, 1, 0.9)], nodes=range(4))
        oracle = ExactOracle(g)
        result = k_nearest_by_reliability(oracle, 0, 3, include_disconnected=True)
        assert len(result) == 3
        assert result[0] == (1, pytest.approx(0.9))
        assert result[1][1] == 0.0

    def test_depth_limited(self, path4):
        oracle = ExactOracle(path4)
        result = k_nearest_by_reliability(oracle, 0, 3, depth=1)
        assert result == [(1, pytest.approx(0.9))]

    def test_deterministic_tie_break(self):
        g = UncertainGraph.from_edges([(0, 1, 0.5), (0, 2, 0.5)])
        oracle = ExactOracle(g)
        result = k_nearest_by_reliability(oracle, 0, 2)
        assert [node for node, _ in result] == [1, 2]

    def test_invalid_k(self, two_triangles_oracle):
        with pytest.raises(ClusteringError):
            k_nearest_by_reliability(two_triangles_oracle, 0, 0)
        with pytest.raises(ClusteringError):
            k_nearest_by_reliability(two_triangles_oracle, 0, 6)

    def test_invalid_source(self, two_triangles_oracle):
        with pytest.raises(IndexError):
            k_nearest_by_reliability(two_triangles_oracle, 9, 2)

    def test_monte_carlo_agrees_with_exact(self, two_triangles):
        exact = ExactOracle(two_triangles)
        sampled = MonteCarloOracle(two_triangles, seed=0)
        sampled.ensure_samples(4000)
        exact_top = {n for n, _ in k_nearest_by_reliability(exact, 0, 2)}
        sampled_top = {n for n, _ in k_nearest_by_reliability(sampled, 0, 2)}
        assert exact_top == sampled_top


class TestMostReliableSource:
    def test_hub_wins_star(self):
        g = UncertainGraph.from_edges([(0, i, 0.8) for i in range(1, 6)])
        oracle = ExactOracle(g)
        node, score = most_reliable_source(oracle)
        assert node == 0
        assert score == pytest.approx(0.8)

    def test_is_k1_mcp(self, two_triangles_oracle):
        # With aggregate="min" this is the brute-force 1-center optimum.
        from repro.core.bruteforce import optimal_min_prob

        expected_value, _ = optimal_min_prob(two_triangles_oracle, 1)
        _, score = most_reliable_source(two_triangles_oracle)
        assert score == pytest.approx(expected_value)

    def test_avg_aggregate(self, two_triangles_oracle):
        from repro.core.bruteforce import optimal_avg_prob

        expected_value, _ = optimal_avg_prob(two_triangles_oracle, 1)
        _, score = most_reliable_source(two_triangles_oracle, aggregate="avg")
        assert score == pytest.approx(expected_value)

    def test_restricted_candidates_and_targets(self, two_triangles_oracle):
        node, score = most_reliable_source(
            two_triangles_oracle, candidates=[3, 4, 5], targets=[3, 4, 5]
        )
        assert node in (3, 4, 5)
        assert score > 0.7

    def test_invalid_aggregate(self, two_triangles_oracle):
        with pytest.raises(ClusteringError):
            most_reliable_source(two_triangles_oracle, aggregate="median")

    def test_empty_candidates(self, two_triangles_oracle):
        with pytest.raises(ClusteringError):
            most_reliable_source(two_triangles_oracle, candidates=[])


class TestReliableSet:
    def test_contains_source(self, two_triangles_oracle):
        nodes = reliable_set(two_triangles_oracle, 0, 0.5)
        assert 0 in nodes

    def test_threshold_semantics(self, two_triangles_oracle):
        nodes = reliable_set(two_triangles_oracle, 0, 0.5)
        row = two_triangles_oracle.connection_to_all(0)
        assert set(nodes.tolist()) == set(np.flatnonzero(row >= 0.5).tolist())

    def test_tight_threshold_is_source_only(self, two_triangles_oracle):
        nodes = reliable_set(two_triangles_oracle, 0, 1.0)
        assert nodes.tolist() == [0]

    def test_invalid_threshold(self, two_triangles_oracle):
        with pytest.raises(ClusteringError):
            reliable_set(two_triangles_oracle, 0, 0.0)


class TestHistogram:
    def test_counts_cover_all_other_nodes(self, two_triangles_oracle):
        counts, edges = reliability_histogram(two_triangles_oracle, 0, bins=5)
        assert counts.sum() == 5  # n - 1
        assert len(edges) == 6

    def test_range_is_unit_interval(self, two_triangles_oracle):
        _, edges = reliability_histogram(two_triangles_oracle, 0)
        assert edges[0] == 0.0
        assert edges[-1] == 1.0
