"""Tests for the public API surface."""

import importlib

import pytest

import repro


class TestTopLevel:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"missing {name}"

    def test_error_hierarchy(self):
        assert issubclass(repro.GraphValidationError, repro.ReproError)
        assert issubclass(repro.ClusteringError, repro.ReproError)
        assert issubclass(repro.OracleError, repro.ReproError)
        assert issubclass(repro.ExperimentError, repro.ReproError)
        assert issubclass(repro.GraphValidationError, ValueError)
        assert issubclass(repro.OracleError, RuntimeError)

    @pytest.mark.parametrize(
        "module",
        [
            "repro.graph",
            "repro.sampling",
            "repro.core",
            "repro.baselines",
            "repro.metrics",
            "repro.datasets",
            "repro.reductions",
            "repro.experiments",
            "repro.utils",
        ],
    )
    def test_subpackages_importable(self, module):
        imported = importlib.import_module(module)
        assert imported.__doc__, f"{module} needs a module docstring"

    @pytest.mark.parametrize(
        "module",
        [
            "repro.graph",
            "repro.sampling",
            "repro.core",
            "repro.baselines",
            "repro.metrics",
            "repro.datasets",
            "repro.reductions",
        ],
    )
    def test_subpackage_all_resolves(self, module):
        imported = importlib.import_module(module)
        for name in imported.__all__:
            assert hasattr(imported, name), f"{module}.{name} missing"


class TestDocstrings:
    @pytest.mark.parametrize(
        "name",
        [
            "UncertainGraph",
            "MonteCarloOracle",
            "ExactOracle",
            "Clustering",
            "min_partial",
            "mcp_clustering",
            "acp_clustering",
        ],
    )
    def test_public_items_documented(self, name):
        item = getattr(repro, name)
        assert item.__doc__ and len(item.__doc__) > 40


class TestEndToEnd:
    def test_minimal_workflow(self):
        graph = repro.UncertainGraph.from_edges(
            [(0, 1, 0.9), (1, 2, 0.9), (3, 4, 0.9), (2, 3, 0.05)]
        )
        result = repro.mcp_clustering(graph, k=2, seed=0)
        assert result.clustering.covers_all
        assert result.clustering.k == 2
