"""Tests for guess schedules and binary-search refinement."""

import pytest

from repro import ClusteringError
from repro.core.schedule import (
    doubling_guesses,
    geometric_guesses,
    refine_between,
    resolve_guess_schedule,
)


class TestGeometric:
    def test_starts_at_one(self):
        guesses = geometric_guesses(0.1, 1e-2)
        assert guesses[0] == 1.0

    def test_strictly_decreasing(self):
        guesses = geometric_guesses(0.1, 1e-3)
        assert all(a > b for a, b in zip(guesses, guesses[1:], strict=False))

    def test_ratio_is_one_plus_gamma(self):
        guesses = geometric_guesses(0.25, 0.1)
        for a, b in zip(guesses[:-2], guesses[1:-1], strict=True):
            assert a / b == pytest.approx(1.25)

    def test_ends_at_p_lower(self):
        guesses = geometric_guesses(0.1, 1e-3)
        assert guesses[-1] == 1e-3

    def test_invalid_parameters(self):
        with pytest.raises(ClusteringError):
            geometric_guesses(0.0, 0.1)
        with pytest.raises(ClusteringError):
            geometric_guesses(0.1, 0.0)


class TestDoubling:
    def test_leading_one(self):
        guesses = doubling_guesses(0.1, 1e-4)
        assert guesses[0] == 1.0

    def test_matches_paper_formula(self):
        # q_i = max(1 - gamma * 2^i, p_lower), gamma = 0.1
        guesses = doubling_guesses(0.1, 1e-4)
        assert guesses[1] == pytest.approx(0.9)
        assert guesses[2] == pytest.approx(0.8)
        assert guesses[3] == pytest.approx(0.6)
        assert guesses[4] == pytest.approx(0.2)
        assert guesses[5] == 1e-4

    def test_strictly_decreasing(self):
        guesses = doubling_guesses(0.3, 1e-4)
        assert all(a > b for a, b in zip(guesses, guesses[1:], strict=False))

    def test_short_for_large_gamma(self):
        # Doubling reaches the floor in O(log(1/gamma)) steps.
        assert len(doubling_guesses(0.1, 1e-4)) < len(geometric_guesses(0.1, 1e-4))


class TestResolve:
    def test_by_name(self):
        assert resolve_guess_schedule("geometric", 0.1, 0.01) == geometric_guesses(0.1, 0.01)
        assert resolve_guess_schedule("doubling", 0.1, 0.01) == doubling_guesses(0.1, 0.01)

    def test_explicit_sequence(self):
        assert resolve_guess_schedule([0.9, 0.5], 0.1, 0.01) == [0.9, 0.5]

    def test_unknown_name(self):
        with pytest.raises(ClusteringError):
            resolve_guess_schedule("linear", 0.1, 0.01)

    def test_rejects_non_decreasing(self):
        with pytest.raises(ClusteringError):
            resolve_guess_schedule([0.5, 0.9], 0.1, 0.01)

    def test_rejects_empty(self):
        with pytest.raises(ClusteringError):
            resolve_guess_schedule([], 0.1, 0.01)

    def test_rejects_empty_iterator(self):
        with pytest.raises(ClusteringError, match="cannot be empty"):
            resolve_guess_schedule(iter(()), 0.1, 0.01)

    def test_rejects_non_iterable(self):
        with pytest.raises(ClusteringError, match="iterable"):
            resolve_guess_schedule(0.5, 0.1, 0.01)

    def test_rejects_non_numeric_elements(self):
        with pytest.raises(ClusteringError, match="numeric"):
            resolve_guess_schedule(["oops"], 0.1, 0.01)
        with pytest.raises(ClusteringError, match="numeric"):
            resolve_guess_schedule([0.5, None], 0.1, 0.01)

    def test_rejects_non_finite(self):
        with pytest.raises(ClusteringError, match="finite"):
            resolve_guess_schedule([float("nan")], 0.1, 0.01)
        with pytest.raises(ClusteringError):
            resolve_guess_schedule([float("inf")], 0.1, 0.01)

    def test_rejects_out_of_range(self):
        with pytest.raises(ClusteringError):
            resolve_guess_schedule([1.5], 0.1, 0.01)


class TestRefine:
    def test_finds_threshold(self):
        # succeeds iff q <= 0.37
        best = refine_between(0.1, 1.0, lambda q: q <= 0.37, ratio=0.99)
        assert best == pytest.approx(0.37, rel=0.02)
        assert best <= 0.37

    def test_stops_at_ratio(self):
        calls = []

        def succeeds(q):
            calls.append(q)
            return q <= 0.5

        refine_between(0.4, 0.8, succeeds, ratio=0.9)
        # log(0.8/0.4)/log(1/0.9) ~ 6.6 probes at most
        assert len(calls) <= 8

    def test_returns_lower_bound_when_nothing_succeeds_above(self):
        best = refine_between(0.2, 0.9, lambda q: q <= 0.2, ratio=0.5)
        assert best == 0.2

    def test_invalid_bounds(self):
        with pytest.raises(ClusteringError):
            refine_between(0.9, 0.5, lambda q: True, ratio=0.9)
        with pytest.raises(ClusteringError):
            refine_between(0.1, 0.5, lambda q: True, ratio=1.5)
