"""Tests for representative-world extraction."""

import numpy as np
import pytest

from repro import UncertainGraph
from repro.sampling.representative import (
    average_degree_representative,
    degree_discrepancy,
    most_probable_world,
)
from tests.conftest import random_graph


class TestMostProbableWorld:
    def test_majority_rule(self):
        g = UncertainGraph.from_edges([(0, 1, 0.9), (1, 2, 0.3), (2, 3, 0.5)])
        mask = most_probable_world(g)
        assert mask.tolist() == [True, False, True]

    def test_tie_probability_excludes(self):
        g = UncertainGraph.from_edges([(0, 1, 0.5)])
        assert most_probable_world(g, tie_probability=0.6).tolist() == [False]

    def test_is_a_mode(self):
        # For independent edges, the per-edge majority maximizes world
        # probability; verify against enumeration.
        from repro.sampling import enumerate_worlds

        g = UncertainGraph.from_edges([(0, 1, 0.7), (1, 2, 0.2), (0, 2, 0.9)])
        best_mask, best_prob = None, -1.0
        for mask, prob in enumerate_worlds(g):
            if prob > best_prob:
                best_mask, best_prob = mask, prob
        assert np.array_equal(most_probable_world(g), best_mask)


class TestDegreeDiscrepancy:
    def test_zero_for_certain_graph(self):
        g = UncertainGraph.from_edges([(0, 1, 1.0), (1, 2, 1.0)])
        assert degree_discrepancy(g, np.array([True, True])) == 0.0

    def test_hand_computed(self):
        g = UncertainGraph.from_edges([(0, 1, 0.5)])
        # Included: both endpoints off by 0.5 -> total 1.0.
        assert degree_discrepancy(g, np.array([True])) == pytest.approx(1.0)
        assert degree_discrepancy(g, np.array([False])) == pytest.approx(1.0)

    def test_shape_check(self, two_triangles):
        with pytest.raises(ValueError):
            degree_discrepancy(two_triangles, np.array([True]))


class TestRepresentative:
    def test_no_worse_than_most_probable(self):
        rng = np.random.default_rng(0)
        for seed in range(5):
            graph = random_graph(12, 0.3, np.random.default_rng(seed), prob_low=0.1)
            base = degree_discrepancy(graph, most_probable_world(graph))
            improved = degree_discrepancy(graph, average_degree_representative(graph))
            assert improved <= base + 1e-9

    def test_mask_shape(self, two_triangles):
        mask = average_degree_representative(two_triangles)
        assert mask.shape == (two_triangles.n_edges,)
        assert mask.dtype == bool

    def test_certain_graph_fixed_point(self):
        g = UncertainGraph.from_edges([(0, 1, 1.0), (1, 2, 1.0)])
        assert average_degree_representative(g).all()

    def test_invalid_passes(self, two_triangles):
        with pytest.raises(ValueError):
            average_degree_representative(two_triangles, max_passes=0)

    def test_expected_degree_preserved_roughly(self):
        rng = np.random.default_rng(3)
        graph = random_graph(20, 0.25, rng, prob_low=0.2, prob_high=0.9)
        mask = average_degree_representative(graph)
        expected = np.zeros(graph.n_nodes)
        np.add.at(expected, graph.edge_src, graph.edge_prob)
        np.add.at(expected, graph.edge_dst, graph.edge_prob)
        actual = np.zeros(graph.n_nodes)
        np.add.at(actual, graph.edge_src, mask.astype(float))
        np.add.at(actual, graph.edge_dst, mask.astype(float))
        # Each node's degree lands within 1 of its expectation after the
        # greedy pass (integrality limits exactness).
        assert np.all(np.abs(actual - expected) <= 1.0 + 1e-9)
