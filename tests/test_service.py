"""End-to-end tests of the async clustering service.

The server runs in-process (:class:`BackgroundServer` on a daemon
thread) and is exercised over real sockets with ``http.client``, so
request parsing, routing, the executor hand-off, and JSON envelopes
are all on the tested path.

The load-bearing pins:

* a warm repeated identical clustering job performs **zero** new
  ``sample_chunk`` calls (sampler spy) and returns labels bit-identical
  to the equivalent direct library call at the same seed;
* N identical in-flight submissions coalesce onto one job;
* error paths answer with the right status: unknown graph (404),
  malformed JSON (400), job not found (404), result of a cancelled or
  unfinished job (409).
"""

from __future__ import annotations

import http.client
import json
import threading
import time

import pytest

from repro.core.mcp import mcp_clustering
from repro.exceptions import JobCancelledError, ServiceError
from repro.graph.uncertain_graph import UncertainGraph
from repro.sampling.parallel import ParallelSampler
from repro.sampling.sizes import PracticalSchedule
from repro.service import BackgroundServer, ClusterService
from repro.service.jobs import Job, JobQueue, canonical_key, paginate_jobs

TIMEOUT = 30.0


def _toy_graph() -> UncertainGraph:
    return UncertainGraph.from_edges(
        [
            (0, 1, 0.9), (1, 2, 0.9), (0, 2, 0.8),
            (3, 4, 0.85), (4, 5, 0.85), (3, 5, 0.75),
            (2, 3, 0.05),
        ]
    )


class Client:
    """Tiny synchronous JSON client over one keep-alive connection."""

    def __init__(self, port: int):
        self.conn = http.client.HTTPConnection("127.0.0.1", port, timeout=TIMEOUT)
        self.last_headers: dict[str, str] = {}

    def request(self, method, path, body=None, content_type="application/json"):
        headers = {}
        if body is not None:
            if isinstance(body, (dict, list)):
                body = json.dumps(body)
            headers["Content-Type"] = content_type
        self.conn.request(method, path, body=body, headers=headers)
        response = self.conn.getresponse()
        raw = response.read()
        self.last_headers = {k.lower(): v for k, v in response.getheaders()}
        return response.status, (json.loads(raw) if raw else None)

    def request_text(self, method, path):
        """Like :meth:`request` but returns the body as text (no JSON)."""
        self.conn.request(method, path)
        response = self.conn.getresponse()
        raw = response.read()
        self.last_headers = {k.lower(): v for k, v in response.getheaders()}
        return response.status, raw.decode("utf-8")

    def wait_job(self, job_id: str) -> dict:
        deadline = time.monotonic() + TIMEOUT
        while time.monotonic() < deadline:
            status, payload = self.request("GET", f"/jobs/{job_id}")
            assert status == 200
            if payload["status"] in ("done", "failed", "cancelled"):
                return payload
            time.sleep(0.01)
        raise AssertionError(f"job {job_id} did not finish within {TIMEOUT}s")

    def run_job(self, params: dict) -> dict:
        status, payload = self.request("POST", "/jobs", params)
        assert status == 202, payload
        described = self.wait_job(payload["job"])
        assert described["status"] == "done", described
        status, result = self.request("GET", f"/jobs/{payload['job']}/result")
        assert status == 200
        return result

    def close(self):
        self.conn.close()


@pytest.fixture
def service():
    svc = ClusterService(datasets=("krogan",), job_workers=2, cache_bytes=64 << 20)
    svc.graphs.register_graph("toy", _toy_graph(), source="test")
    return svc


@pytest.fixture
def server(service):
    with BackgroundServer(service) as running:
        yield running


@pytest.fixture
def client(server):
    c = Client(server.port)
    yield c
    c.close()


class TestMetaEndpoints:
    def test_healthz(self, client):
        from repro import __version__

        status, payload = client.request("GET", "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["graphs"] == 2  # toy + lazy krogan
        assert payload["version"] == __version__
        assert payload["workers"] == 2
        assert payload["mode"] == "thread"
        assert payload["started_at"] <= time.time()
        assert 0 <= payload["uptime_seconds"] < 300
        assert payload["uptime_s"] == payload["uptime_seconds"]  # legacy alias

    def test_version_matches_package(self, client):
        from repro import __version__

        assert client.request("GET", "/version") == (200, {"version": __version__})

    def test_unknown_endpoint_404(self, client):
        status, payload = client.request("GET", "/nope")
        assert status == 404
        assert "error" in payload

    def test_wrong_method_405(self, client):
        status, _ = client.request("DELETE", "/healthz")
        assert status == 405

    def test_malformed_request_line_400(self, server):
        import socket

        with socket.create_connection(("127.0.0.1", server.port), timeout=TIMEOUT) as sock:
            sock.sendall(b"BANANAS\r\n\r\n")
            response = sock.recv(4096)
        assert b"400" in response.split(b"\r\n", 1)[0]

    def test_chunked_transfer_encoding_rejected(self, server):
        import socket

        with socket.create_connection(("127.0.0.1", server.port), timeout=TIMEOUT) as sock:
            sock.sendall(
                b"PUT /graphs/x HTTP/1.1\r\nHost: h\r\n"
                b"Transfer-Encoding: chunked\r\n\r\n"
                b"5\r\n0 1 1\r\n0\r\n\r\n"
            )
            response = sock.recv(4096)
        assert b"501" in response.split(b"\r\n", 1)[0]

    def test_keep_alive_connection_reuse(self, client):
        # Two requests through one http.client connection = keep-alive.
        assert client.request("GET", "/healthz")[0] == 200
        assert client.request("GET", "/version")[0] == 200

    def test_shutdown_not_blocked_by_idle_keepalive_connection(self):
        # Python >= 3.12.1 makes Server.wait_closed() wait for handler
        # tasks; close() must cancel the ones parked on idle keep-alive
        # connections or shutdown hangs until clients go away.
        svc = ClusterService(datasets=(), job_workers=1)
        server = BackgroundServer(svc).start()
        idle = Client(server.port)
        try:
            assert idle.request("GET", "/healthz")[0] == 200
            begin = time.monotonic()
            server.stop()  # idle keep-alive connection still open
            assert time.monotonic() - begin < 10.0
        finally:
            idle.close()


class TestGraphEndpoints:
    def test_list_includes_builtin_and_uploaded(self, client):
        status, payload = client.request("GET", "/graphs")
        assert status == 200
        names = {graph["name"]: graph for graph in payload["graphs"]}
        assert names["toy"]["loaded"] is True
        assert names["toy"]["nodes"] == 6
        assert names["krogan"]["source"] == "builtin"
        assert names["krogan"]["loaded"] is False  # lazy until first use

    def test_stats(self, client):
        status, payload = client.request("GET", "/graphs/toy")
        assert status == 200
        assert payload["nodes"] == 6
        assert payload["edges"] == 7
        assert payload["largest_component"]["nodes"] == 6
        assert 0 < payload["edge_probability"]["min"] <= 1

    def test_upload_json_edges(self, client):
        status, payload = client.request(
            "PUT", "/graphs/uploaded", {"edges": [["a", "b", 0.5], ["b", "c", 0.75]]}
        )
        assert (status, payload["nodes"], payload["edges"]) == (200, 3, 2)
        status, payload = client.request("GET", "/graphs/uploaded")
        assert status == 200 and payload["edges"] == 2

    def test_upload_uel_text(self, client):
        status, payload = client.request(
            "PUT", "/graphs/text", "0 1 0.5\n1 2 0.25\n", content_type="text/plain"
        )
        assert status == 200
        assert payload == {"name": "text", "nodes": 3, "edges": 2}

    def test_upload_bad_probability_400_with_line(self, client):
        status, payload = client.request(
            "PUT", "/graphs/bad", "0 1 0.5\n1 2 1.5\n", content_type="text/plain"
        )
        assert status == 400
        assert "line 2" in payload["error"]["message"]
        assert client.request("GET", "/graphs/bad")[0] == 404  # nothing registered

    def test_upload_json_nan_probability_400(self, client):
        # json.loads accepts the NaN literal, and NaN passes from_edges's
        # range comparisons — the upload path must catch it explicitly.
        status, payload = client.request(
            "PUT", "/graphs/bad", body='{"edges": [[0, 1, 0.5], [1, 2, NaN]]}'
        )
        assert status == 400
        assert "edge 2" in payload["error"]["message"]
        status, payload = client.request(
            "PUT", "/graphs/bad", {"edges": [[0, 1, 1.5]]}
        )
        assert status == 400
        assert "outside [0, 1]" in payload["error"]["message"]
        status, payload = client.request(
            "PUT", "/graphs/bad", {"edges": [[0, 1, 0.5], [1, 2]]}
        )
        assert status == 400
        assert "triple" in payload["error"]["message"]

    def test_upload_malformed_json_400(self, client):
        status, payload = client.request("PUT", "/graphs/bad", body="{nope")
        assert status == 400
        assert "malformed JSON" in payload["error"]["message"]

    def test_upload_json_non_object_body_400(self, client):
        status, payload = client.request("PUT", "/graphs/bad", [[0, 1, 0.5]])
        assert status == 400
        assert "object" in payload["error"]["message"]

    def test_delete(self, client):
        client.request("PUT", "/graphs/gone", "0 1 0.5\n", content_type="text/plain")
        assert client.request("DELETE", "/graphs/gone")[0] == 200
        assert client.request("GET", "/graphs/gone")[0] == 404
        assert client.request("DELETE", "/graphs/gone")[0] == 404

    def test_unknown_graph_404(self, client):
        status, payload = client.request("GET", "/graphs/missing")
        assert status == 404
        assert "no such graph" in payload["error"]["message"]


class TestEstimate:
    def test_estimate_matches_library(self, client):
        status, payload = client.request(
            "GET", "/graphs/toy/estimate?u=0&v=1&samples=400&seed=3"
        )
        assert status == 200
        from repro.sampling.oracle import MonteCarloOracle

        oracle = MonteCarloOracle(_toy_graph(), seed=3)
        oracle.ensure_samples(400)
        assert payload["estimate"] == oracle.connection(0, 1)

    def test_estimate_warm_second_request(self, client):
        path = "/graphs/toy/estimate?u=0&v=5&samples=300"
        _, cold = client.request("GET", path)
        _, warm = client.request("GET", path)
        assert cold["worlds_sampled"] == 300
        assert warm["worlds_sampled"] == 0
        assert warm["worlds_cached"] == 300
        assert warm["estimate"] == cold["estimate"]

    def test_estimate_depth(self, client):
        status, payload = client.request(
            "GET", "/graphs/toy/estimate?u=0&v=5&samples=200&depth=1"
        )
        assert status == 200
        assert payload["estimate"] == 0.0  # not adjacent

    def test_missing_params_400(self, client):
        status, payload = client.request("GET", "/graphs/toy/estimate?u=0")
        assert status == 400
        assert "'u' and 'v'" in payload["error"]["message"]

    def test_unknown_node_404(self, client):
        status, payload = client.request("GET", "/graphs/toy/estimate?u=0&v=banana")
        assert status == 404
        assert "no such node" in payload["error"]["message"]

    def test_bad_samples_400(self, client):
        status, _ = client.request("GET", "/graphs/toy/estimate?u=0&v=1&samples=goose")
        assert status == 400

    def test_samples_above_cap_400(self, client):
        # A request must not be able to lift the oracle's sample budget.
        status, payload = client.request(
            "GET", "/graphs/toy/estimate?u=0&v=1&samples=2000000000"
        )
        assert status == 400
        assert "samples" in payload["error"]["message"]


class TestJobs:
    PARAMS = {"graph": "toy", "algorithm": "mcp", "k": 2, "samples": 300, "seed": 0}

    def test_warm_repeat_zero_sampling_and_bit_identical_labels(self, client, monkeypatch):
        """The acceptance pin: sampler spy + library equivalence."""
        calls = []
        original = ParallelSampler.sample_chunk

        def spying(self, seed_seq, start, count):
            calls.append((start, count))
            return original(self, seed_seq, start, count)

        monkeypatch.setattr(ParallelSampler, "sample_chunk", spying)

        cold = client.run_job(self.PARAMS)
        assert cold["worlds_sampled"] > 0
        calls_after_cold = len(calls)
        assert calls_after_cold > 0

        warm = client.run_job(self.PARAMS)
        assert len(calls) == calls_after_cold  # zero new sample_chunk calls
        assert warm["warm"] is True
        assert warm["worlds_sampled"] == 0
        assert warm["worlds_cached"] > 0
        assert warm["assignment"] == cold["assignment"]
        assert warm["centers"] == cold["centers"]

        library = mcp_clustering(
            _toy_graph(), 2, seed=0,
            sample_schedule=PracticalSchedule(max_samples=300),
        )
        assert warm["assignment"] == [int(x) for x in library.clustering.assignment]
        assert warm["centers"] == [int(x) for x in library.clustering.centers]
        assert warm["min_prob"] == library.min_prob_estimate
        assert warm["q_final"] == library.q_final

    def test_acp_job(self, client):
        result = client.run_job({**self.PARAMS, "algorithm": "acp"})
        assert result["algorithm"] == "acp"
        assert 0 <= result["avg_prob"] <= 1
        assert len(result["assignment"]) == 6

    def test_mcl_job(self, client):
        result = client.run_job({"graph": "toy", "algorithm": "mcl"})
        assert result["algorithm"] == "mcl"
        assert result["n_clusters"] >= 1

    def test_gmm_job(self, client):
        result = client.run_job({"graph": "toy", "algorithm": "gmm", "k": 2})
        assert result["algorithm"] == "gmm"
        assert len(set(result["assignment"])) == 2

    def test_mcp_acp_share_one_pool(self, client):
        mcp = client.run_job({**self.PARAMS, "seed": 9})
        acp = client.run_job({**self.PARAMS, "seed": 9, "algorithm": "acp"})
        assert acp["pool_digest"] == mcp["pool_digest"]
        # ACP may explore lower thresholds (needing pool growth), but it
        # starts from MCP's pool instead of resampling it.
        assert acp["worlds_cached"] >= mcp["worlds_sampled"] > 0

    def test_unknown_graph_404(self, client):
        status, payload = client.request("POST", "/jobs", {**self.PARAMS, "graph": "nope"})
        assert status == 404
        assert "no such graph" in payload["error"]["message"]

    def test_malformed_body_400(self, client):
        status, payload = client.request("POST", "/jobs", body="{broken")
        assert status == 400
        assert "malformed JSON" in payload["error"]["message"]

    def test_unknown_algorithm_400(self, client):
        status, payload = client.request("POST", "/jobs", {**self.PARAMS, "algorithm": "magic"})
        assert status == 400
        assert "algorithm" in payload["error"]["message"]

    def test_unknown_field_400(self, client):
        status, payload = client.request("POST", "/jobs", {**self.PARAMS, "bogus": 1})
        assert status == 400
        assert "bogus" in payload["error"]["message"]

    def test_job_not_found_404(self, client):
        assert client.request("GET", "/jobs/job-999999")[0] == 404
        assert client.request("GET", "/jobs/job-999999/result")[0] == 404
        assert client.request("DELETE", "/jobs/job-999999")[0] == 404

    def test_result_before_done_409(self, service, client):
        # Saturate both workers with a gate so the probe job stays queued.
        gate = threading.Event()
        original = service._run_job

        def gated(job):
            if job.params.get("algorithm") == "gmm":
                gate.wait(TIMEOUT)
            return original(job)

        service.jobs._runner = gated
        try:
            for seed in (101, 102):
                client.request("POST", "/jobs", {"graph": "toy", "algorithm": "gmm",
                                                 "k": 2, "seed": seed})
            status, submitted = client.request("POST", "/jobs", {**self.PARAMS, "seed": 77})
            assert status == 202
            status, payload = client.request("GET", f"/jobs/{submitted['job']}/result")
            assert status == 409
            assert "not done" in payload["error"]["message"]
        finally:
            gate.set()
            service.jobs._runner = original
        client.wait_job(submitted["job"])

    def test_cancel_queued_job(self, service, client):
        gate = threading.Event()
        original = service._run_job

        def gated(job):
            if job.params.get("algorithm") == "gmm":
                gate.wait(TIMEOUT)
            return original(job)

        service.jobs._runner = gated
        try:
            for seed in (201, 202):
                client.request("POST", "/jobs", {"graph": "toy", "algorithm": "gmm",
                                                 "k": 2, "seed": seed})
            _, submitted = client.request("POST", "/jobs", {**self.PARAMS, "seed": 88})
            status, payload = client.request("DELETE", f"/jobs/{submitted['job']}")
            assert status == 202
            described = client.wait_job(submitted["job"])
            assert described["status"] == "cancelled"
            status, payload = client.request("GET", f"/jobs/{submitted['job']}/result")
            assert status == 409
            assert "cancelled" in payload["error"]["message"]
        finally:
            gate.set()
            service.jobs._runner = original

    def test_coalescing_identical_inflight_jobs(self, service, client):
        gate = threading.Event()
        original = service._run_job

        def gated(job):
            gate.wait(TIMEOUT)
            return original(job)

        service.jobs._runner = gated
        try:
            params = {**self.PARAMS, "seed": 55}
            _, first = client.request("POST", "/jobs", params)
            assert first["coalesced"] is False
            # Field order and explicit defaults must not defeat coalescing.
            _, second = client.request(
                "POST", "/jobs",
                {"seed": 55, "k": 2, "samples": 300, "graph": "toy",
                 "algorithm": "mcp", "backend": "auto"},
            )
            assert second["job"] == first["job"]
            assert second["coalesced"] is True
            _, different = client.request("POST", "/jobs", {**params, "seed": 56})
            assert different["job"] != first["job"]
        finally:
            gate.set()
            service.jobs._runner = original
        assert client.wait_job(first["job"])["status"] == "done"
        status, payload = client.request("GET", f"/jobs/{first['job']}")
        assert payload["coalesced"] == 1

    def test_reupload_does_not_coalesce_or_redirect_inflight_jobs(self, service, client):
        gate = threading.Event()
        original = service._run_job

        def gated(job):
            gate.wait(TIMEOUT)
            return original(job)

        service.jobs._runner = gated
        client.request("PUT", "/graphs/mut", "0 1 0.9\n1 2 0.9\n2 3 0.9\n",
                       content_type="text/plain")
        params = {"graph": "mut", "algorithm": "gmm", "k": 2}
        try:
            _, first = client.request("POST", "/jobs", params)
            # Replace the graph under the same name while the job waits.
            client.request("PUT", "/graphs/mut",
                           "0 1 0.9\n1 2 0.9\n2 3 0.9\n3 4 0.9\n",
                           content_type="text/plain")
            _, second = client.request("POST", "/jobs", params)
            assert second["job"] != first["job"]  # new contents: no coalescing
            assert second["coalesced"] is False
        finally:
            gate.set()
            service.jobs._runner = original
        client.wait_job(first["job"])
        client.wait_job(second["job"])
        _, res1 = client.request("GET", f"/jobs/{first['job']}/result")
        _, res2 = client.request("GET", f"/jobs/{second['job']}/result")
        # Each job ran on the graph captured at its submission.
        assert len(res1["assignment"]) == 4
        assert len(res2["assignment"]) == 5

    def test_samples_below_schedule_floor_400(self, client):
        status, payload = client.request("POST", "/jobs", {**self.PARAMS, "samples": 10})
        assert status == 400
        assert "samples" in payload["error"]["message"] and "50" in payload["error"]["message"]

    def test_job_samples_above_cap_400(self, client):
        status, payload = client.request(
            "POST", "/jobs", {**self.PARAMS, "samples": 2_000_000_000}
        )
        assert status == 400
        assert "samples" in payload["error"]["message"]

    def test_jobs_list(self, client):
        client.run_job({"graph": "toy", "algorithm": "gmm", "k": 3})
        status, payload = client.request("GET", "/jobs")
        assert status == 200
        assert any(job["status"] == "done" for job in payload["jobs"])

    def test_cache_endpoint_reports_pools(self, client):
        client.run_job(self.PARAMS)
        status, payload = client.request("GET", "/cache")
        assert status == 200
        assert payload["pools"] >= 1
        assert payload["bytes"] > 0
        assert payload["leases"] >= 1


class TestJobQueueUnit:
    """Queue semantics that are racy to pin over HTTP."""

    def test_canonical_key_order_insensitive(self):
        assert canonical_key({"a": 1, "b": 2}) == canonical_key({"b": 2, "a": 1})
        assert canonical_key({"a": 1}) != canonical_key({"a": 2})

    def test_coalesces_only_while_in_flight(self):
        release = threading.Event()
        queue = JobQueue(lambda job: (release.wait(TIMEOUT), {"ok": True})[1], workers=1)
        try:
            first, coalesced_first = queue.submit({"x": 1})
            again, coalesced_again = queue.submit({"x": 1})
            assert not coalesced_first and coalesced_again
            assert again.id == first.id and first.coalesced == 1
            release.set()
            _wait_terminal(queue, first.id)
            fresh, coalesced_fresh = queue.submit({"x": 1})
            assert not coalesced_fresh and fresh.id != first.id
            _wait_terminal(queue, fresh.id)
        finally:
            release.set()
            queue.shutdown()

    def test_cancel_running_job_via_cancel_check(self):
        started = threading.Event()

        def runner(job):
            started.set()
            deadline = time.monotonic() + TIMEOUT
            while time.monotonic() < deadline:
                if job.cancel_event.is_set():
                    raise JobCancelledError("observed cancel")
                time.sleep(0.005)
            raise AssertionError("cancel never observed")

        queue = JobQueue(runner, workers=1)
        try:
            job, _ = queue.submit({"slow": True})
            assert started.wait(TIMEOUT)
            queue.cancel(job.id)
            final = _wait_terminal(queue, job.id)
            assert final.status == "cancelled"
            assert "observed cancel" in final.error
        finally:
            queue.shutdown()

    def test_cancelled_job_stops_coalescing_immediately(self):
        started = threading.Event()
        release = threading.Event()

        def runner(job):
            started.set()
            release.wait(TIMEOUT)
            if job.cancel_event.is_set():
                raise JobCancelledError("cancelled")
            return {"ok": True}

        queue = JobQueue(runner, workers=1)
        try:
            doomed, _ = queue.submit({"x": 1})
            assert started.wait(TIMEOUT)
            queue.cancel(doomed.id)  # running: key must leave _inflight now
            fresh, coalesced = queue.submit({"x": 1})
            assert not coalesced
            assert fresh.id != doomed.id
            release.set()
            assert _wait_terminal(queue, doomed.id).status == "cancelled"
            assert _wait_terminal(queue, fresh.id).status == "done"
        finally:
            release.set()
            queue.shutdown()

    def test_failure_recorded_not_raised(self):
        queue = JobQueue(lambda job: 1 / 0, workers=1)
        try:
            job, _ = queue.submit({})
            final = _wait_terminal(queue, job.id)
            assert final.status == "failed"
            assert "ZeroDivisionError" in final.error
            with pytest.raises(ServiceError):
                queue.get("job-424242")
        finally:
            queue.shutdown()

    def test_terminal_jobs_pruned(self):
        queue = JobQueue(lambda job: {}, workers=1, retain=2)
        try:
            ids = [queue.submit({"i": i})[0].id for i in range(5)]
            for job_id in ids:
                _wait_terminal(queue, job_id)
            queue.submit({"i": 99})
            assert len(queue.list()) <= 4  # 2 retained + in-flight slack
        finally:
            queue.shutdown()


def _wait_terminal(queue: JobQueue, job_id: str):
    deadline = time.monotonic() + TIMEOUT
    while time.monotonic() < deadline:
        job = queue.get(job_id)
        if job.status in ("done", "failed", "cancelled"):
            return job
        time.sleep(0.005)
    raise AssertionError(f"job {job_id} never reached a terminal state")


class TestCancelCheckLibrary:
    """cancel_check= is honored by the core entrypoints themselves."""

    def test_mcp_cancel_check_aborts(self):
        calls = []

        def cancel_check():
            calls.append(None)
            if len(calls) >= 2:
                raise JobCancelledError("stop")

        # k=1 forces the threshold past the 0.05 bridge, so the schedule
        # needs several guesses — the second one is cancelled.
        with pytest.raises(JobCancelledError):
            mcp_clustering(_toy_graph(), 1, seed=0, cancel_check=cancel_check)
        assert len(calls) == 2

    def test_acp_cancel_check_aborts(self):
        from repro.core.acp import acp_clustering

        def cancel_check():
            raise JobCancelledError("stop")

        with pytest.raises(JobCancelledError):
            acp_clustering(_toy_graph(), 2, seed=0, cancel_check=cancel_check)


class TestOracleCacheEviction:
    def test_lru_eviction_respects_budget_and_pins(self):
        from repro.service.cache import OracleCache

        graph = _toy_graph()
        # One 6-node/7-edge pool of 256 worlds: 256*8 mask bytes (1 word)
        # + 256*6*4 label bytes ~ 8 KiB. Budget of 10 KiB keeps one.
        cache = OracleCache(max_bytes=10 * 1024)
        for seed in range(3):
            with cache.lease(graph, seed=seed) as oracle:
                oracle.ensure_samples(256)
        stats = cache.stats()
        assert stats["evictions"] >= 2
        assert stats["bytes"] <= 10 * 1024
        assert stats["pools"] == 1
        # The surviving pool is the most recently used: seed=2 is warm.
        with cache.lease(graph, seed=2) as oracle:
            oracle.ensure_samples(256)
            assert oracle.cache_stats["worlds_sampled"] == 0

    def test_legacy_disk_pools_are_evictable(self, tmp_path):
        from repro.sampling.store import WorldStore
        from repro.service.cache import OracleCache

        graph = _toy_graph()
        # A previous process leaves a pool in the cache directory...
        from repro.sampling.oracle import MonteCarloOracle

        with MonteCarloOracle(graph, seed=99, store=WorldStore(tmp_path)) as old:
            old.ensure_samples(512)
        # ...that alone exceeds this service's budget. It must be the
        # eviction victim — not every pool this process actually uses.
        cache = OracleCache(WorldStore(tmp_path), max_bytes=12 * 1024)
        for _ in range(2):
            with cache.lease(graph, seed=0) as oracle:
                oracle.ensure_samples(256)
        stats = cache.stats()
        assert stats["warm_leases"] == 1  # second lease stayed warm
        digests = {pool.digest for pool in cache.store.info()}
        assert len(digests) == 1  # legacy pool evicted, active one kept

    def test_pinned_pool_never_evicted_mid_lease(self):
        from repro.service.cache import OracleCache

        graph = _toy_graph()
        cache = OracleCache(max_bytes=1)  # everything over budget
        with cache.lease(graph, seed=0) as oracle:
            oracle.ensure_samples(128)
            # Mid-lease the pool must still be readable and intact.
            assert cache.store.count(oracle.pool_digest) == 128
        # After release the budget evicts it.
        assert cache.stats()["pools"] == 0


class TestOracleCacheAccounting:
    """Regression pins for the byte-accounting and recency bookkeeping."""

    def test_size_snapshots_taken_under_cache_lock(self):
        from repro.service.cache import OracleCache

        cache = OracleCache(max_bytes=1024)
        locked_during_snapshot = []
        original = cache._pool_bytes

        def spying_pool_bytes():
            locked_during_snapshot.append(cache._lock.locked())
            return original()

        cache._pool_bytes = spying_pool_bytes
        cache._enforce_budget()
        cache.stats()
        # Both paths used to snapshot before taking the lock, letting a
        # registering lease grow a pool between snapshot and eviction.
        assert locked_during_snapshot == [True, True]

    def test_budget_race_with_registering_lease(self):
        """_enforce_budget racing a lease that is registering its pool.

        The old lock-free snapshot could mis-subtract stale sizes and
        leave the budget silently overshot; under the fix, concurrent
        enforcement is linearized and the final footprint lands within
        budget once all leases drain.
        """
        import threading

        from repro.service.cache import OracleCache

        graph = _toy_graph()
        cache = OracleCache(max_bytes=10 * 1024)  # ~one 256-world pool
        errors = []

        def churn(seed: int):
            try:
                for _ in range(5):
                    with cache.lease(graph, seed=seed) as oracle:
                        oracle.ensure_samples(256)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=churn, args=(s,)) for s in range(3)]
        for t in threads:
            t.start()
        for _ in range(50):
            cache._enforce_budget()
            cache.stats()
        for t in threads:
            t.join()
        assert not errors
        assert cache.stats()["bytes"] <= 10 * 1024

    def test_failed_construction_leaves_no_recency_entry(self):
        from repro.service.cache import OracleCache

        graph = _toy_graph()
        cache = OracleCache(max_bytes=1 << 20)
        with pytest.raises(ValueError):
            with cache.lease(graph, seed=0, max_samples=0):
                pass  # pragma: no cover - construction raises
        # The failed lease must not enter the LRU or trip enforcement:
        # its digest was never registered in the store.
        assert len(cache._recency) == 0
        assert cache.stats()["leases"] == 1
        # A later healthy lease with the same key starts cold but clean.
        with cache.lease(graph, seed=0) as oracle:
            oracle.ensure_samples(64)
        assert len(cache._recency) == 1


class TestGraphMutation:
    """PATCH /graphs/{name}/edges: revisions, coalescing, warm derivation."""

    def test_patch_updates_edge_and_bumps_revision(self, client):
        status, before = client.request("GET", "/graphs")
        rev_before = next(g["revision"] for g in before["graphs"] if g["name"] == "toy")
        status, payload = client.request(
            "PATCH", "/graphs/toy/edges",
            {"ops": [{"op": "update", "u": 0, "v": 1, "p": 0.25}]},
        )
        assert status == 200, payload
        assert payload["delta"] == {"added": 0, "removed": 0, "updated": 1}
        assert payload["revision"] > rev_before
        assert payload["graph_revision"] == 1
        status, after = client.request("GET", "/graphs/toy")
        assert after["edge_probability"]["min"] == 0.05  # untouched edge

    def test_patch_add_and_remove(self, client):
        status, payload = client.request(
            "PATCH", "/graphs/toy/edges",
            {"ops": [{"op": "add", "u": 0, "v": 5, "p": 0.5},
                     {"op": "remove", "u": 2, "v": 3}]},
        )
        assert status == 200
        assert payload["delta"] == {"added": 1, "removed": 1, "updated": 0}
        assert payload["edges"] == 7  # 7 - 1 + 1

    def test_patch_bare_list_body(self, client):
        status, payload = client.request(
            "PATCH", "/graphs/toy/edges", [{"op": "update", "u": 0, "v": 1, "p": 0.4}]
        )
        assert status == 200 and payload["delta"]["updated"] == 1

    def test_patch_validation_errors_400(self, client):
        cases = [
            {},                                                   # no ops
            {"ops": []},                                          # empty ops
            {"ops": [{"op": "toggle", "u": 0, "v": 1}]},          # bad op
            {"ops": [{"op": "add", "u": 0}]},                     # missing v
            {"ops": [{"op": "add", "u": 0, "v": 1, "p": 0.5}]},   # exists
            {"ops": [{"op": "remove", "u": 0, "v": 5}]},          # missing edge
            {"ops": [{"op": "update", "u": 0, "v": 1, "p": 1.5}]},  # bad p
            {"ops": [{"op": "update", "u": 0, "v": 1}]},          # no p
            {"ops": [{"op": "remove", "u": 0, "v": 1, "p": 0.5}]},  # p on remove
            {"ops": [{"op": "update", "u": 0, "v": 1, "p": 0.3},
                     {"op": "update", "u": 1, "v": 0, "p": 0.4}]},  # dup edge
        ]
        for body in cases:
            status, payload = client.request("PATCH", "/graphs/toy/edges", body)
            assert status == 400, (body, payload)
            assert "error" in payload

    def test_patch_unknown_graph_404(self, client):
        status, _ = client.request(
            "PATCH", "/graphs/nope/edges",
            {"ops": [{"op": "update", "u": 0, "v": 1, "p": 0.5}]},
        )
        assert status == 404

    def test_patch_unknown_node_404(self, client):
        status, payload = client.request(
            "PATCH", "/graphs/toy/edges",
            {"ops": [{"op": "update", "u": 0, "v": 99, "p": 0.5}]},
        )
        assert status == 404
        assert "no such node" in payload["error"]["message"]

    def test_patch_mutation_prevents_coalescing(self, service, client):
        """The regression pin: a PATCH (not just a re-upload) bumps the
        revision, so a post-mutation submission never coalesces with an
        in-flight pre-mutation job — and each job runs on its own
        revision's contents."""
        gate = threading.Event()
        original = service._run_job

        def gated(job):
            gate.wait(TIMEOUT)
            return original(job)

        service.jobs._runner = gated
        params = {"graph": "toy", "algorithm": "gmm", "k": 2}
        try:
            _, first = client.request("POST", "/jobs", params)
            assert first["coalesced"] is False
            status, patched = client.request(
                "PATCH", "/graphs/toy/edges",
                {"ops": [{"op": "remove", "u": 2, "v": 3}]},
            )
            assert status == 200
            _, second = client.request("POST", "/jobs", params)
            assert second["job"] != first["job"]  # mutated contents: no coalescing
            assert second["coalesced"] is False
            # Identical re-submission against the *same* revision coalesces.
            _, third = client.request("POST", "/jobs", params)
            assert third["job"] == second["job"] and third["coalesced"] is True
        finally:
            gate.set()
            service.jobs._runner = original
        client.wait_job(first["job"])
        client.wait_job(second["job"])

    def test_job_after_mutation_is_warm_via_derivation(self, service, client, monkeypatch):
        """Warm-after-mutation: the post-PATCH job derives the pool from
        the pre-mutation one and performs zero new sample_chunk calls."""
        params = {"graph": "toy", "algorithm": "mcp", "k": 2, "samples": 300, "seed": 3}
        cold = client.run_job(params)
        assert cold["worlds_sampled"] > 0

        calls = []
        original = ParallelSampler.sample_chunk

        def spying(sampler, root, start, count):
            calls.append(count)
            return original(sampler, root, start, count)

        monkeypatch.setattr(ParallelSampler, "sample_chunk", spying)
        status, _ = client.request(
            "PATCH", "/graphs/toy/edges",
            {"ops": [{"op": "update", "u": 0, "v": 1, "p": 0.91}]},
        )
        assert status == 200
        warm = client.run_job(params)
        assert calls == []  # derived, not resampled
        assert warm["worlds_sampled"] == 0
        assert warm["warm"] is True
        status, stats = client.request("GET", "/cache")
        assert stats["pools_derived"] >= 1
        assert stats["worlds_derived"] > 0
        # The derived labels equal a cold run of the mutated graph.
        graph, _rev, _anc = service.graphs.resolve_with_ancestors("toy")
        direct = mcp_clustering(
            graph, 2, seed=3,
            sample_schedule=PracticalSchedule(max_samples=300),
        )
        assert warm["assignment"] == direct.clustering.assignment.tolist()

    def test_estimate_after_mutation_is_warm(self, client):
        path = "/graphs/toy/estimate?u=0&v=2&samples=400&seed=1"
        status, cold = client.request("GET", path)
        assert status == 200 and cold["worlds_sampled"] == 400
        status, _ = client.request(
            "PATCH", "/graphs/toy/edges",
            {"ops": [{"op": "update", "u": 3, "v": 4, "p": 0.9}]},
        )
        assert status == 200
        status, warm = client.request("GET", path)
        assert status == 200
        assert warm["worlds_sampled"] == 0  # derived from the parent pool
        assert warm["worlds_cached"] == 400


class TestLoadgenFailureBodies:
    """`repro bench-serve` failure summaries carry response bodies."""

    def test_describe_failure_includes_body(self):
        from repro.service.loadgen import describe_failure

        assert describe_failure(400, {"error": "bad samples"}) == "400: bad samples"
        assert describe_failure(500, None) == "500: <no body>"
        assert describe_failure(502, {"weird": True}) == '502: {"weird": true}'
        long = describe_failure(400, {"error": "x" * 500})
        assert len(long) <= 210 and long.endswith("...")

    def test_sustained_load_failure_reports_body(self, server):
        """End to end: a non-200 during the sustained phase surfaces the
        service's error body, not just the status code."""
        import asyncio

        from repro.service.loadgen import ServiceClient, _estimate_worker

        async def run():
            latencies, failures = [], []
            client = ServiceClient("127.0.0.1", server.port)
            # Bad samples parameter -> 400 with a JSON error body.
            await _estimate_worker(
                "127.0.0.1", server.port,
                "/graphs/toy/estimate?u=0&v=1&samples=0",
                time.monotonic() + 5, latencies, failures,
            )
            await client.close()
            return failures

        failures = asyncio.run(run())
        assert len(failures) == 1
        assert failures[0].startswith("400 [bad_request]:")
        assert "samples" in failures[0]  # the body, not just the code


def _read_sse(port: int, job_id: str, timeout: float = TIMEOUT):
    """GET /v1/jobs/{id}/events over a raw socket; return (head, events)."""
    import socket

    with socket.create_connection(("127.0.0.1", port), timeout=timeout) as sock:
        sock.sendall(
            f"GET /v1/jobs/{job_id}/events HTTP/1.1\r\n"
            f"Host: h\r\nConnection: close\r\n\r\n".encode()
        )
        chunks = []
        while True:
            data = sock.recv(65536)
            if not data:
                break
            chunks.append(data)
    raw = b"".join(chunks)
    head, _, body = raw.partition(b"\r\n\r\n")
    events = []
    for line in body.decode().splitlines():
        if line.startswith("data: "):
            events.append(json.loads(line[len("data: "):]))
    return head.decode(), events


class TestV1ApiSurface:
    """Satellite pins: /v1 prefix, deprecation shim, request ids, envelope."""

    def test_v1_and_legacy_alias_both_serve(self, client):
        status, v1 = client.request("GET", "/v1/healthz")
        assert status == 200 and v1["status"] == "ok"
        assert "deprecation" not in client.last_headers

        status, legacy = client.request("GET", "/healthz")
        assert status == 200 and legacy["status"] == "ok"
        assert client.last_headers["deprecation"] == "true"
        assert client.last_headers["link"] == '</v1/healthz>; rel="successor-version"'

    def test_legacy_alias_covers_parameterized_routes(self, client):
        status, _ = client.request("GET", "/graphs/toy")
        assert status == 200
        assert client.last_headers["link"] == '</v1/graphs/toy>; rel="successor-version"'
        status, _ = client.request("GET", "/v1/graphs/toy")
        assert status == 200
        assert "deprecation" not in client.last_headers

    def test_every_response_carries_unique_request_id(self, client):
        seen = set()
        for path in ("/v1/healthz", "/v1/nope", "/healthz"):
            client.request("GET", path)
            request_id = client.last_headers.get("x-request-id")
            assert request_id
            seen.add(request_id)
        assert len(seen) == 3

    def test_error_envelope_shape_and_request_id_echo(self, client):
        status, payload = client.request("GET", "/v1/graphs/missing")
        assert status == 404
        error = payload["error"]
        assert error["code"] == "not_found"
        assert "no such graph" in error["message"]
        assert error["request_id"] == client.last_headers["x-request-id"]

    def test_405_envelope_code(self, client):
        status, payload = client.request("DELETE", "/v1/healthz")
        assert status == 405
        assert payload["error"]["code"] == "method_not_allowed"

    def test_400_envelope_code(self, client):
        status, payload = client.request("POST", "/v1/jobs", body="{broken")
        assert status == 400
        assert payload["error"]["code"] == "bad_request"


class TestJobEventStream:
    """GET /v1/jobs/{id}/events — SSE replay of the job's lifecycle."""

    PARAMS = {"graph": "toy", "algorithm": "mcp", "k": 2, "samples": 300, "seed": 5}

    def test_sse_replays_lifecycle_to_terminal(self, client, server):
        status, submitted = client.request("POST", "/v1/jobs", self.PARAMS)
        assert status == 202
        client.wait_job(submitted["job"])

        head, events = _read_sse(server.port, submitted["job"])
        assert "200" in head.splitlines()[0]
        assert "text/event-stream" in head.lower()
        kinds = [event["event"] for event in events]
        assert kinds[0] == "queued"
        assert "running" in kinds
        assert "progress" in kinds  # mcp emits one record per guess
        assert kinds[-1] == "done"
        assert [event["seq"] for event in events] == list(range(len(events)))
        assert all(event["job"] == submitted["job"] for event in events)
        # Every event carries the *stream* request's id (SSE echo pin).
        stream_ids = {event["request_id"] for event in events}
        assert len(stream_ids) == 1 and stream_ids.pop()

    def test_sse_progress_records_carry_guess_data(self, client, server):
        status, submitted = client.request("POST", "/v1/jobs", self.PARAMS)
        assert status == 202
        client.wait_job(submitted["job"])
        _, events = _read_sse(server.port, submitted["job"])
        progress = [e for e in events if e["event"] == "progress"]
        assert progress
        for record in progress:
            assert {"q", "samples", "covered"} <= set(record["data"])

    def test_sse_unknown_job_404_envelope(self, client):
        status, payload = client.request("GET", "/v1/jobs/job-999999/events")
        assert status == 404
        assert payload["error"]["code"] == "not_found"


class TestJobListPagination:
    """GET /v1/jobs?state=&limit=&cursor= plus the pagination unit pins."""

    def test_state_filter_limit_and_cursor(self, client):
        ids = []
        for seed in range(4):
            _, submitted = client.request(
                "POST", "/v1/jobs",
                {"graph": "toy", "algorithm": "gmm", "k": 2, "seed": seed},
            )
            ids.append(submitted["job"])
        for job_id in ids:
            client.wait_job(job_id)

        status, page1 = client.request("GET", "/v1/jobs?state=done&limit=2")
        assert status == 200
        assert [job["status"] for job in page1["jobs"]] == ["done", "done"]
        assert page1["next_cursor"] == page1["jobs"][-1]["id"]

        status, page2 = client.request(
            "GET", f"/v1/jobs?state=done&limit=2&cursor={page1['next_cursor']}"
        )
        assert status == 200
        assert page2["next_cursor"] is None
        walked = [job["id"] for job in page1["jobs"] + page2["jobs"]]
        assert walked == sorted(set(ids))  # every job exactly once, in order

        status, none_queued = client.request("GET", "/v1/jobs?state=queued")
        assert status == 200 and none_queued["jobs"] == []

    def test_bad_query_params_400(self, client):
        assert client.request("GET", "/v1/jobs?state=bogus")[0] == 400
        assert client.request("GET", "/v1/jobs?limit=0")[0] == 400
        assert client.request("GET", "/v1/jobs?limit=goose")[0] == 400
        assert client.request("GET", "/v1/jobs?cursor=nope")[0] == 400

    def test_paginate_cursor_resumes_after_pruned_id(self):
        jobs = [Job(id=f"job-{i:06d}", key=str(i), params={}) for i in (1, 2, 4, 5)]
        page, cursor = paginate_jobs(jobs, limit=2)
        assert [job.id for job in page] == ["job-000001", "job-000002"]
        assert cursor == "job-000002"
        # job-000003 was pruned meanwhile: the cursor still resumes
        # strictly after it without skipping or repeating anything.
        page2, cursor2 = paginate_jobs(jobs, limit=2, cursor=cursor)
        assert [job.id for job in page2] == ["job-000004", "job-000005"]
        assert cursor2 is None

    def test_paginate_exact_last_page_has_no_cursor(self):
        jobs = [Job(id=f"job-{i:06d}", key=str(i), params={}) for i in (1, 2)]
        page, cursor = paginate_jobs(jobs, limit=2)
        assert len(page) == 2 and cursor is None

    def test_prune_is_deterministic_oldest_terminal_first(self):
        queue = JobQueue(lambda job: {}, workers=1, retain=2)
        try:
            ids = [queue.submit({"i": i})[0].id for i in range(5)]
            for job_id in ids:
                _wait_terminal(queue, job_id)
            newest, _ = queue.submit({"i": 99})
            _wait_terminal(queue, newest.id)
            kept = [job.id for job in queue.list()]
            # The three oldest terminal jobs are the pruning victims.
            assert kept == [ids[3], ids[4], newest.id]
        finally:
            queue.shutdown()


class TestAdmissionControlUnit:
    def test_token_bucket_drains_and_refills(self):
        from repro.service.admission import TokenBucket

        bucket = TokenBucket(rate=1.0, burst=2)
        assert bucket.acquire(now=0.0) is None
        assert bucket.acquire(now=0.0) is None
        retry = bucket.acquire(now=0.0)
        assert retry is not None and retry > 0
        assert bucket.acquire(now=retry + 0.01) is None

    def test_rate_limiter_isolates_clients(self):
        from repro.service.admission import RateLimiter

        limiter = RateLimiter(rate=0.001, burst=1)
        assert limiter.check("alice") is None
        assert limiter.check("alice") is not None  # alice drained
        assert limiter.check("bob") is None  # bob unaffected

    def test_admit_job_queue_depth_bound(self):
        from repro.service.admission import AdmissionControl

        control = AdmissionControl(max_queued=2, max_jobs_per_client=8)
        control.admit_job({"queued": 1, "running": 2, "client_active": 0, "workers": 2})
        with pytest.raises(ServiceError) as caught:
            control.admit_job(
                {"queued": 2, "running": 2, "client_active": 0, "workers": 2}
            )
        assert caught.value.status == 429
        assert caught.value.code == "rate_limited"
        assert int(caught.value.headers["Retry-After"]) >= 1

    def test_admit_job_per_client_bound(self):
        from repro.service.admission import AdmissionControl

        control = AdmissionControl(max_queued=None, max_jobs_per_client=1)
        control.admit_job({"queued": 99, "running": 0, "client_active": 0, "workers": 1})
        with pytest.raises(ServiceError) as caught:
            control.admit_job(
                {"queued": 0, "running": 0, "client_active": 1, "workers": 1}
            )
        assert caught.value.status == 429


class TestAdmissionOverHttp:
    def test_burst_beyond_queue_bound_429_with_retry_after(self):
        from repro.service.admission import AdmissionControl

        svc = ClusterService(
            datasets=(), job_workers=1,
            admission=AdmissionControl(max_queued=1, max_jobs_per_client=None),
        )
        svc.graphs.register_graph("toy", _toy_graph(), source="test")
        gate = threading.Event()
        original = svc._run_job

        def gated(job):
            gate.wait(TIMEOUT)
            return original(job)

        svc.jobs._runner = gated
        server = BackgroundServer(svc).start()
        client = Client(server.port)
        try:
            statuses, rejected = [], None
            accepted_params = None
            for seed in range(6):
                params = {"graph": "toy", "algorithm": "gmm", "k": 2, "seed": seed}
                status, payload = client.request("POST", "/v1/jobs", params)
                statuses.append(status)
                if status == 202 and accepted_params is None:
                    accepted_params = params
                if status == 429:
                    rejected = payload
                    assert payload["error"]["code"] == "rate_limited"
                    assert int(client.last_headers["retry-after"]) >= 1
                    break
            assert rejected is not None, statuses
            # Coalesced resubmission of an in-flight job is never
            # rejected — it adds no load.
            status, payload = client.request("POST", "/v1/jobs", accepted_params)
            assert status == 202 and payload["coalesced"] is True
        finally:
            gate.set()
            client.close()
            server.stop()

    def test_rate_limit_middleware_429_and_healthz_exempt(self):
        from repro.service.admission import AdmissionControl

        svc = ClusterService(
            datasets=(),
            admission=AdmissionControl(rate_limit=1.0, burst=2,
                                       max_queued=None, max_jobs_per_client=None),
        )
        server = BackgroundServer(svc).start()
        client = Client(server.port)
        try:
            statuses = [client.request("GET", "/v1/graphs")[0] for _ in range(4)]
            assert statuses[:2] == [200, 200]
            assert 429 in statuses[2:]
            assert int(client.last_headers.get("retry-after", "1")) >= 1
            # Probes stay exempt even with the bucket drained.
            assert client.request("GET", "/v1/healthz")[0] == 200
        finally:
            client.close()
            server.stop()


class TestDrainShutdown:
    def test_drain_rejects_new_work_then_stops(self):
        svc = ClusterService(datasets=(), job_workers=1, shutdown_grace_s=30.0)
        svc.graphs.register_graph("toy", _toy_graph(), source="test")
        gate = threading.Event()
        original = svc._run_job

        def gated(job):
            gate.wait(TIMEOUT)
            return original(job)

        svc.jobs._runner = gated
        server = BackgroundServer(svc).start()
        client = Client(server.port)
        try:
            _, submitted = client.request(
                "POST", "/v1/jobs", {"graph": "toy", "algorithm": "gmm", "k": 2}
            )
            status, payload = client.request("POST", "/v1/shutdown", {"grace_s": 30.0})
            assert status == 202
            assert payload["status"] == "draining"
            assert payload["active_jobs"] >= 1

            # Mid-drain: work-creating requests answer 503 + Retry-After.
            status, payload = client.request(
                "POST", "/v1/jobs",
                {"graph": "toy", "algorithm": "gmm", "k": 2, "seed": 9},
            )
            assert status == 503
            assert payload["error"]["code"] == "draining"
            assert client.last_headers["retry-after"]

            # Reads, cancels, and repeat shutdowns stay available.
            assert client.request("GET", f"/v1/jobs/{submitted['job']}")[0] == 200
            status, health = client.request("GET", "/v1/healthz")
            assert status == 200 and health["status"] == "draining"
            assert client.request("POST", "/v1/shutdown")[0] == 202

            gate.set()
            assert client.wait_job(submitted["job"])["status"] == "done"
            deadline = time.monotonic() + TIMEOUT
            while time.monotonic() < deadline and not svc.shutdown_event.is_set():
                time.sleep(0.02)
            assert svc.shutdown_event.is_set()
        finally:
            gate.set()
            client.close()
            server.stop()

    def test_grace_expiry_cancels_leftovers(self):
        svc = ClusterService(datasets=(), job_workers=1)
        svc.graphs.register_graph("toy", _toy_graph(), source="test")
        gate = threading.Event()
        original = svc._run_job

        def gated(job):
            gate.wait(TIMEOUT)
            if job.cancel_event.is_set():
                raise JobCancelledError("cancelled at shutdown")
            return original(job)

        svc.jobs._runner = gated
        server = BackgroundServer(svc).start()
        client = Client(server.port)
        try:
            client.request("POST", "/v1/jobs", {"graph": "toy", "algorithm": "gmm", "k": 2})
            status, _ = client.request("POST", "/v1/shutdown", {"grace_s": 0.05})
            assert status == 202
            deadline = time.monotonic() + TIMEOUT
            while time.monotonic() < deadline and not svc.shutdown_event.is_set():
                time.sleep(0.02)
            assert svc.shutdown_event.is_set()  # grace expired, not drained
        finally:
            gate.set()
            client.close()
            server.stop()

    def test_shutdown_rejects_bad_grace(self, client):
        status, payload = client.request("POST", "/v1/shutdown", {"grace_s": "soon"})
        assert status == 400
        status, payload = client.request("POST", "/v1/shutdown", {"grace_s": -1})
        assert status == 400


class TestProgressCallback:
    """The library-level progress hook behind the SSE progress events."""

    def test_mcp_progress_one_record_per_guess(self):
        seen = []
        result = mcp_clustering(
            _toy_graph(), 2, seed=0,
            sample_schedule=PracticalSchedule(max_samples=300),
            progress=seen.append,
        )
        assert len(seen) == result.n_guesses
        for record in seen:
            assert {"q", "samples", "covered", "covers_all"} <= set(record)
        assert seen[-1]["samples"] == result.samples_used

    def test_acp_progress_records(self):
        from repro.core.acp import acp_clustering

        seen = []
        acp_clustering(
            _toy_graph(), 2, seed=0,
            sample_schedule=PracticalSchedule(max_samples=300),
            progress=seen.append,
        )
        assert seen
        for record in seen:
            assert {"q", "samples", "covered"} <= set(record)


class TestProcessWorkers:
    """The tentpole end to end: spawned worker processes over one store."""

    PARAMS = {"graph": "toy", "algorithm": "mcp", "k": 2, "samples": 300, "seed": 0}

    def test_warm_repeat_across_process_workers_bit_identical(self, tmp_path):
        svc = ClusterService(
            datasets=(), worker_processes=2,
            world_cache=tmp_path / "worlds", cache_bytes=64 << 20,
        )
        svc.graphs.register_graph("toy", _toy_graph(), source="test")
        with BackgroundServer(svc) as server:
            client = Client(server.port)
            try:
                cold = client.run_job(self.PARAMS)
                assert cold["worlds_sampled"] > 0

                warm = client.run_job(self.PARAMS)
                assert warm["warm"] is True
                assert warm["worlds_sampled"] == 0
                assert warm["assignment"] == cold["assignment"]
                assert warm["centers"] == cold["centers"]

                library = mcp_clustering(
                    _toy_graph(), 2, seed=0,
                    sample_schedule=PracticalSchedule(max_samples=300),
                )
                assert warm["assignment"] == [int(x) for x in library.clustering.assignment]
                assert warm["q_final"] == library.q_final

                # Affinity ledger pin: both jobs ran on the same worker,
                # so the warm hit came from that worker's own cache.
                _, cold_events = _read_sse(server.port, cold["job"])
                _, warm_events = _read_sse(server.port, warm["job"])
                workers_used = {
                    next(e["data"]["worker"] for e in events if e["event"] == "queued")
                    for events in (cold_events, warm_events)
                }
                assert len(workers_used) == 1
                # SSE works identically in process mode.
                kinds = [e["event"] for e in warm_events]
                assert kinds[0] == "queued" and kinds[-1] == "done"
                assert "running" in kinds and "progress" in kinds
            finally:
                client.close()

    def test_cancel_queued_and_running_jobs_in_process_mode(self, tmp_path):
        svc = ClusterService(
            datasets=(), worker_processes=1, world_cache=tmp_path / "worlds",
        )
        svc.graphs.register_graph("toy", _toy_graph(), source="test")
        with BackgroundServer(svc) as server:
            client = Client(server.port)
            try:
                # k=1 forces the threshold search deep, so the job grinds
                # through many guesses — plenty of cancel_check windows.
                _, heavy = client.request(
                    "POST", "/v1/jobs",
                    {"graph": "toy", "algorithm": "mcp", "k": 1,
                     "samples": 1_000_000, "seed": 71},
                )
                _, probe = client.request(
                    "POST", "/v1/jobs",
                    {"graph": "toy", "algorithm": "gmm", "k": 2, "seed": 72},
                )
                assert client.request("DELETE", f"/v1/jobs/{probe['job']}")[0] == 202
                assert client.request("DELETE", f"/v1/jobs/{heavy['job']}")[0] == 202
                assert client.wait_job(probe["job"])["status"] == "cancelled"
                assert client.wait_job(heavy["job"])["status"] == "cancelled"
                status, payload = client.request("GET", f"/v1/jobs/{heavy['job']}/result")
                assert status == 409
            finally:
                client.close()

    def test_process_queue_rejects_bad_config(self):
        from repro.service.workers import ProcessJobQueue

        with pytest.raises(ValueError):
            ProcessJobQueue(workers=0)


class TestTelemetryEndpoints:
    """``GET /v1/metrics``, cache agreement, and per-job phase timings."""

    TIMINGS_KEYS = {
        "total_ms", "sample_ms", "label_ms", "store_read_ms",
        "cluster_ms", "worlds_sampled", "worlds_reused",
    }

    def test_metrics_endpoint_serves_prometheus_text(self, client):
        from repro.telemetry import parse_prometheus_text

        client.run_job(
            {"graph": "toy", "algorithm": "mcp", "k": 2, "samples": 300, "seed": 5}
        )
        status, text = client.request_text("GET", "/v1/metrics")
        assert status == 200
        assert client.last_headers["content-type"] == (
            "text/plain; version=0.0.4; charset=utf-8"
        )
        series = parse_prometheus_text(text)
        # One series per subsystem proves the whole stack is wired.
        assert series['repro_jobs_submitted_total{algorithm="mcp"}'] >= 1
        assert series['repro_jobs_completed_total{algorithm="mcp",status="done"}'] >= 1
        assert any(key.startswith("repro_http_requests_total{") for key in series)
        assert any(key.startswith("repro_sampler_worlds_total{") for key in series)
        assert series["repro_store_worlds_appended_total"] > 0
        assert series["repro_cache_leases_total"] >= 1
        assert "repro_admission_tracked_clients" in series
        assert series['repro_job_seconds_bucket{algorithm="mcp",le="+Inf"}'] >= 1

    def test_cache_endpoint_and_metrics_share_one_snapshot(self, client):
        """Satellite fix: ``/v1/cache`` and ``repro_cache_*`` cannot drift."""
        from repro.telemetry import parse_prometheus_text

        status, _ = client.request(
            "GET", "/v1/graphs/toy/estimate?u=0&v=1&samples=100&seed=1"
        )
        assert status == 200
        status, stats = client.request("GET", "/v1/cache")
        assert status == 200
        _, text = client.request_text("GET", "/v1/metrics")
        series = parse_prometheus_text(text)
        for key in ("leases", "warm_leases", "evictions", "worlds_cached",
                    "worlds_sampled", "pools_derived", "worlds_derived"):
            assert series[f"repro_cache_{key}_total"] == stats[key], key
        assert series["repro_cache_pools"] == stats["pools"]
        assert series["repro_cache_bytes"] == stats["bytes"]
        assert series["repro_cache_max_bytes"] == stats["max_bytes"]

    def test_job_status_and_sse_carry_timings(self, client, server):
        params = {"graph": "toy", "algorithm": "mcp", "k": 2,
                  "samples": 300, "seed": 6}
        status, payload = client.request("POST", "/v1/jobs", params)
        assert status == 202
        described = client.wait_job(payload["job"])
        timings = described["timings"]
        assert set(timings) == self.TIMINGS_KEYS
        assert timings["total_ms"] > 0
        # The progressive schedule samples what the threshold search
        # needed, bounded by the budget; a cold job samples something.
        assert 0 < timings["worlds_sampled"] <= 300
        assert timings["worlds_reused"] == 0
        assert timings["total_ms"] >= timings["sample_ms"]
        _, events = _read_sse(server.port, payload["job"])
        terminal = events[-1]
        assert terminal["event"] == "done"
        assert terminal["data"]["timings"] == timings

    def test_fleet_metrics_aggregate_across_two_process_workers(self, tmp_path):
        """Acceptance pin: ``--workers 2`` metrics reflect the whole fleet.

        Two distinct jobs overlap in flight, so least-loaded dispatch
        lands them on different worker processes; each worker ships its
        counter deltas over the event queue before the terminal event,
        so by the time both jobs read as done the parent's scrape must
        account for every world either worker sampled.
        """
        from repro.telemetry import parse_prometheus_text

        svc = ClusterService(
            datasets=(), worker_processes=2,
            world_cache=tmp_path / "worlds", cache_bytes=64 << 20,
        )
        svc.graphs.register_graph("toy", _toy_graph(), source="test")
        with BackgroundServer(svc) as server:
            client = Client(server.port)
            try:
                _, before_text = client.request_text("GET", "/v1/metrics")
                before = parse_prometheus_text(before_text)

                def series(table, key):
                    return table.get(key, 0.0)

                params_a = {"graph": "toy", "algorithm": "mcp", "k": 2,
                            "samples": 2000, "seed": 21}
                params_b = {"graph": "toy", "algorithm": "mcp", "k": 3,
                            "samples": 2000, "seed": 22}
                _, a = client.request("POST", "/v1/jobs", params_a)
                _, b = client.request("POST", "/v1/jobs", params_b)
                done_a = client.wait_job(a["job"])
                done_b = client.wait_job(b["job"])
                assert done_a["status"] == "done" and done_b["status"] == "done"

                _, workers_a = _read_sse(server.port, a["job"])
                _, workers_b = _read_sse(server.port, b["job"])
                used = {
                    next(e["data"]["worker"] for e in events if e["event"] == "queued")
                    for events in (workers_a, workers_b)
                }
                assert used == {0, 1}, f"jobs did not spread: {used}"

                _, after_text = client.request_text("GET", "/v1/metrics")
                after = parse_prometheus_text(after_text)

                done_key = 'repro_jobs_completed_total{algorithm="mcp",status="done"}'
                assert series(after, done_key) - series(before, done_key) == 2

                sampled = sum(
                    r["timings"]["worlds_sampled"]
                    for r in (done_a, done_b)
                )
                assert sampled > 0  # both cold jobs sampled in the workers
                worlds_keys = [k for k in after
                               if k.startswith("repro_sampler_worlds_total{")]
                fleet_worlds = (
                    sum(series(after, k) for k in worlds_keys)
                    - sum(series(before, k) for k in worlds_keys)
                )
                assert fleet_worlds == sampled

                appended_key = "repro_store_worlds_appended_total"
                assert (series(after, appended_key)
                        - series(before, appended_key)) == sampled
            finally:
                client.close()
