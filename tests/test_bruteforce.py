"""Tests for brute-force optimal clusterings (the testing yardstick itself)."""

import numpy as np
import pytest

from repro import ClusteringError, UncertainGraph
from repro.core.bruteforce import optimal_avg_prob, optimal_clustering, optimal_min_prob
from repro.sampling import ExactOracle


@pytest.fixture
def oracle(two_triangles):
    return ExactOracle(two_triangles)


class TestOptimalMinProb:
    def test_k2_on_two_triangles(self, oracle):
        value, centers = optimal_min_prob(oracle, 2)
        # One center in each triangle is clearly optimal.
        assert (centers[0] < 3) != (centers[1] < 3)
        assert value > 0.8

    def test_k1_uses_bridge(self, oracle):
        value, _ = optimal_min_prob(oracle, 1)
        # A single cluster must cross the 0.05 bridge.
        assert value < 0.1

    def test_value_decreasing_in_difficulty(self, oracle):
        v1, _ = optimal_min_prob(oracle, 1)
        v2, _ = optimal_min_prob(oracle, 2)
        assert v2 >= v1

    def test_zero_when_components_exceed_k(self):
        g = UncertainGraph.from_edges([(0, 1, 0.9), (2, 3, 0.9), (4, 5, 0.9)])
        value, _ = optimal_min_prob(ExactOracle(g), 2)
        assert value == 0.0

    def test_depth_variant_no_larger(self, oracle):
        free, _ = optimal_min_prob(oracle, 2)
        limited, _ = optimal_min_prob(oracle, 2, depth=1)
        assert limited <= free + 1e-12

    def test_invalid_k(self, oracle):
        with pytest.raises(ClusteringError):
            optimal_min_prob(oracle, 0)
        with pytest.raises(ClusteringError):
            optimal_min_prob(oracle, 6)


class TestOptimalAvgProb:
    def test_avg_at_least_min(self, oracle):
        for k in (1, 2, 3):
            v_min, _ = optimal_min_prob(oracle, k)
            v_avg, _ = optimal_avg_prob(oracle, k)
            assert v_avg >= v_min - 1e-12

    def test_avg_at_least_k_over_n(self, oracle):
        # Centers contribute probability 1 each.
        for k in (1, 2, 3):
            v_avg, _ = optimal_avg_prob(oracle, k)
            assert v_avg >= k / 6 - 1e-12

    def test_monotone_in_k(self, oracle):
        values = [optimal_avg_prob(oracle, k)[0] for k in (1, 2, 3, 4)]
        assert all(a <= b + 1e-12 for a, b in zip(values, values[1:], strict=False))


class TestOptimalClustering:
    def test_min_objective_matches_value(self, oracle):
        value, _ = optimal_min_prob(oracle, 2)
        clustering = optimal_clustering(oracle, 2, objective="min")
        assert clustering.min_prob() == pytest.approx(value)
        assert clustering.covers_all

    def test_avg_objective_matches_value(self, oracle):
        value, _ = optimal_avg_prob(oracle, 2)
        clustering = optimal_clustering(oracle, 2, objective="avg")
        assert clustering.avg_prob() == pytest.approx(value)

    def test_unknown_objective(self, oracle):
        with pytest.raises(ClusteringError):
            optimal_clustering(oracle, 2, objective="median")

    def test_centers_assigned_to_self(self, oracle):
        clustering = optimal_clustering(oracle, 3, objective="min")
        assert np.array_equal(
            clustering.assignment[clustering.centers], np.arange(3)
        )

    def test_too_large_enumeration_guarded(self):
        g = UncertainGraph.from_edges([(i, i + 1, 0.9) for i in range(99)])
        with pytest.raises(ClusteringError, match="brute force"):
            optimal_min_prob(ExactOracle(g, max_uncertain_edges=200), 20)
