"""Tests for the DBLP-like collaboration graph generator."""

import numpy as np
import pytest

from repro import GraphValidationError
from repro.datasets.collaboration import (
    collaboration_probability,
    dblp_like,
    sample_collaboration_counts,
)


class TestProbabilityLaw:
    def test_known_values(self):
        # 1 - exp(-x/2): the paper quotes 0.39, 0.63, 0.91.
        assert collaboration_probability(1) == pytest.approx(0.39, abs=0.01)
        assert collaboration_probability(2) == pytest.approx(0.63, abs=0.01)
        assert collaboration_probability(5) == pytest.approx(0.91, abs=0.01)

    def test_vectorized(self):
        values = collaboration_probability(np.array([1, 2, 5]))
        assert values.shape == (3,)
        assert np.all(np.diff(values) > 0)

    def test_count_marginal(self):
        rng = np.random.default_rng(0)
        counts = sample_collaboration_counts(50_000, rng)
        assert (counts == 1).mean() == pytest.approx(0.80, abs=0.02)
        assert (counts == 2).mean() == pytest.approx(0.12, abs=0.02)
        assert (counts >= 3).mean() == pytest.approx(0.08, abs=0.02)


class TestGenerator:
    @pytest.fixture(scope="class")
    def graph(self):
        return dblp_like(3000, seed=1)

    def test_largest_cc_connected(self, graph):
        assert len(np.unique(graph.connected_components())) == 1

    def test_edge_probability_distribution(self, graph):
        prob = graph.edge_prob
        p1 = collaboration_probability(1)
        p2 = collaboration_probability(2)
        frac1 = (np.abs(prob - p1) < 1e-9).mean()
        frac2 = (np.abs(prob - p2) < 1e-9).mean()
        assert frac1 == pytest.approx(0.80, abs=0.04)
        assert frac2 == pytest.approx(0.12, abs=0.04)
        assert (prob > p2 + 1e-9).mean() == pytest.approx(0.08, abs=0.04)

    def test_heavy_tailed_degrees(self, graph):
        degrees = graph.degrees()
        assert degrees.max() > 4 * degrees.mean()

    def test_deterministic(self):
        a = dblp_like(1000, seed=3)
        b = dblp_like(1000, seed=3)
        assert a.n_nodes == b.n_nodes
        assert np.array_equal(a.edge_prob, b.edge_prob)

    def test_no_largest_cc_keeps_all_authors(self):
        g = dblp_like(500, seed=2, largest_cc=False)
        assert g.n_nodes == 500

    def test_invalid_parameters(self):
        with pytest.raises(GraphValidationError):
            dblp_like(5)
        with pytest.raises(GraphValidationError):
            dblp_like(100, papers_per_author=0)
        with pytest.raises(GraphValidationError):
            dblp_like(100, team_mean=0.5)

    def test_preferential_attachment_fattens_tail(self):
        uniform = dblp_like(1500, seed=4, preferential_weight=0.0)
        preferential = dblp_like(1500, seed=4, preferential_weight=2.0)
        assert preferential.degrees().max() > uniform.degrees().max()
