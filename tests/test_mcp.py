"""Tests for the MCP clustering driver (Algorithm 2)."""

import numpy as np
import pytest

from repro import ClusteringError, MonteCarloOracle, UncertainGraph, mcp_clustering
from repro.core.bruteforce import optimal_min_prob
from repro.metrics import min_connection_probability
from repro.sampling import ExactOracle
from tests.conftest import random_graph


class TestBasics:
    def test_returns_full_clustering(self, two_triangles):
        result = mcp_clustering(two_triangles, k=2, seed=0)
        assert result.clustering.covers_all
        assert result.covers_all

    def test_k_clusters(self, two_triangles):
        for k in (1, 2, 4):
            result = mcp_clustering(two_triangles, k=k, seed=0)
            assert result.clustering.k == k

    def test_history_has_decreasing_guesses_then_refinement(self, two_triangles):
        result = mcp_clustering(two_triangles, k=2, seed=0, refine=False)
        qs = [record.q for record in result.history]
        assert qs == sorted(qs, reverse=True)

    def test_needs_graph_or_oracle(self):
        with pytest.raises(ClusteringError):
            mcp_clustering(None, 2)

    def test_invalid_k(self, two_triangles):
        with pytest.raises(ClusteringError):
            mcp_clustering(two_triangles, k=0)
        with pytest.raises(ClusteringError):
            mcp_clustering(two_triangles, k=6)

    def test_invalid_gamma(self, two_triangles):
        with pytest.raises(ClusteringError):
            mcp_clustering(two_triangles, k=2, gamma=0.0)

    def test_empty_guess_schedule_rejected(self, two_triangles):
        # Regression: must be a clean validation error, never an
        # UnboundLocalError from the post-loop bookkeeping.
        with pytest.raises(ClusteringError, match="empty"):
            mcp_clustering(two_triangles, k=2, guess_schedule=[])
        with pytest.raises(ClusteringError, match="empty"):
            mcp_clustering(two_triangles, k=2, guess_schedule=iter(()))

    def test_deterministic_with_seed(self, two_triangles):
        a = mcp_clustering(two_triangles, k=2, seed=9)
        b = mcp_clustering(two_triangles, k=2, seed=9)
        assert np.array_equal(a.clustering.assignment, b.clustering.assignment)
        assert a.q_final == b.q_final

    def test_exact_oracle_mode(self, two_triangles_oracle):
        result = mcp_clustering(None, 2, oracle=two_triangles_oracle, seed=0)
        assert result.covers_all
        assert result.samples_used == 0  # exact oracle consumes no samples

    def test_custom_guess_schedule(self, two_triangles_oracle):
        result = mcp_clustering(
            None, 2, oracle=two_triangles_oracle, guess_schedule=[0.9, 0.5, 0.1], refine=False
        )
        assert result.covers_all

    def test_geometric_schedule(self, two_triangles_oracle):
        result = mcp_clustering(
            None, 2, oracle=two_triangles_oracle, guess_schedule="geometric", refine=False
        )
        assert result.covers_all

    def test_theoretical_sample_schedule_runs(self, two_triangles):
        result = mcp_clustering(
            two_triangles,
            k=2,
            seed=0,
            sample_schedule="theoretical",
            p_lower=0.05,
            guess_schedule=[0.5],
            refine=False,
            max_samples=100_000,
        )
        assert result.clustering.k == 2


class TestSeparatedComponents:
    def test_two_clear_clusters(self, two_triangles):
        result = mcp_clustering(two_triangles, k=2, seed=1)
        assignment = result.clustering.assignment
        assert len(set(assignment[:3].tolist())) == 1
        assert len(set(assignment[3:].tolist())) == 1
        assert assignment[0] != assignment[5]

    def test_disconnected_components_force_partition(self):
        g = UncertainGraph.from_edges(
            [(0, 1, 0.9), (1, 2, 0.9), (3, 4, 0.9), (4, 5, 0.9)]
        )
        result = mcp_clustering(g, k=2, seed=0)
        assignment = result.clustering.assignment
        assert assignment[0] == assignment[1] == assignment[2]
        assert assignment[3] == assignment[4] == assignment[5]

    def test_more_components_than_k_bottoms_out(self):
        # 3 components, k=2: no full 2-clustering with positive min-prob
        # exists, so the schedule bottoms out at p_lower and the result
        # is completed best-effort.
        g = UncertainGraph.from_edges(
            [(0, 1, 0.9), (2, 3, 0.9), (4, 5, 0.9)]
        )
        result = mcp_clustering(g, k=2, seed=0, p_lower=0.01)
        assert not result.covers_all
        assert result.clustering.covers_all  # completed anyway
        assert result.min_prob_estimate == 0.0


class TestGuarantee:
    """Theorem 3: min-prob(C) >= p_opt_min(k)^2 / (1 + gamma)."""

    @pytest.mark.parametrize("seed", range(8))
    def test_approximation_bound_exact_oracle(self, seed):
        rng = np.random.default_rng(100 + seed)
        graph = random_graph(8, 0.4, rng, prob_low=0.25)
        oracle = ExactOracle(graph)
        gamma = 0.1
        for k in (2, 3):
            p_opt, _ = optimal_min_prob(oracle, k)
            if p_opt == 0.0:
                continue
            result = mcp_clustering(
                None, k, oracle=oracle, gamma=gamma, seed=seed, p_lower=1e-5
            )
            achieved = min_connection_probability(result.clustering, oracle)
            bound = p_opt**2 / (1 + gamma)
            assert achieved >= bound - 1e-12, (
                f"k={k}: achieved {achieved} < bound {bound} (p_opt={p_opt})"
            )

    def test_refinement_improves_or_matches_threshold(self, two_triangles_oracle):
        rough = mcp_clustering(None, 2, oracle=two_triangles_oracle, refine=False, seed=0)
        refined = mcp_clustering(None, 2, oracle=two_triangles_oracle, refine=True, seed=0)
        assert refined.q_final >= rough.q_final - 1e-12


class TestMonteCarloIntegration:
    def test_sampled_run_close_to_exact(self, two_triangles):
        exact = ExactOracle(two_triangles)
        sampled_result = mcp_clustering(two_triangles, k=2, seed=3, eps=0.2)
        achieved = min_connection_probability(sampled_result.clustering, exact)
        exact_result = mcp_clustering(None, 2, oracle=exact, seed=3)
        reference = min_connection_probability(exact_result.clustering, exact)
        assert achieved >= reference * 0.7

    def test_progressive_sampling_reuses_worlds(self, two_triangles):
        oracle = MonteCarloOracle(two_triangles, seed=0)
        mcp_clustering(None, 2, oracle=oracle, seed=0)
        assert oracle.num_samples > 0  # schedule drove sampling

    def test_history_reports_sample_counts(self, two_triangles):
        result = mcp_clustering(two_triangles, k=2, seed=0)
        assert all(record.samples > 0 for record in result.history)


class TestDepthLimited:
    def test_depth_run_covers(self, two_triangles):
        result = mcp_clustering(two_triangles, k=2, seed=0, depth=2)
        assert result.clustering.covers_all

    def test_depth_guarantee_theorem5(self):
        # Theorem 5 bound: min-prob_d >= p_opt_min(k, floor(d/2))^2 / (1+gamma)
        rng = np.random.default_rng(77)
        graph = random_graph(8, 0.4, rng, prob_low=0.3)
        oracle = ExactOracle(graph)
        d, k, gamma = 4, 2, 0.1
        p_opt_half, _ = optimal_min_prob(oracle, k, depth=d // 2)
        if p_opt_half == 0.0:
            pytest.skip("graph has no positive half-depth optimum")
        result = mcp_clustering(None, k, oracle=oracle, depth=d, gamma=gamma, seed=0)
        achieved = min_connection_probability(result.clustering, oracle, depth=d)
        assert achieved >= p_opt_half**2 / (1 + gamma) - 1e-12

    def test_invalid_depth(self, two_triangles):
        with pytest.raises(ClusteringError):
            mcp_clustering(two_triangles, k=2, depth=0)
