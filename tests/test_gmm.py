"""Tests for the gmm (Gonzalez k-center) baseline."""

import numpy as np
import pytest

from repro import ClusteringError, UncertainGraph
from repro.baselines.gmm import gmm_clustering
from repro.graph.traversal import dijkstra_distances
from tests.conftest import random_graph


class TestBasics:
    def test_full_k_clustering(self, two_triangles):
        clustering = gmm_clustering(two_triangles, 2, seed=0)
        assert clustering.covers_all
        assert clustering.k == 2

    def test_distinct_centers(self, two_triangles):
        clustering = gmm_clustering(two_triangles, 4, seed=1)
        assert len(set(clustering.centers.tolist())) == 4

    def test_first_center_pinned(self, two_triangles):
        clustering = gmm_clustering(two_triangles, 2, first_center=5)
        assert clustering.centers[0] == 5

    def test_deterministic_with_seed(self, two_triangles):
        a = gmm_clustering(two_triangles, 3, seed=7)
        b = gmm_clustering(two_triangles, 3, seed=7)
        assert np.array_equal(a.assignment, b.assignment)

    def test_invalid_k(self, two_triangles):
        with pytest.raises(ClusteringError):
            gmm_clustering(two_triangles, 0)
        with pytest.raises(ClusteringError):
            gmm_clustering(two_triangles, 6)

    def test_invalid_first_center(self, two_triangles):
        with pytest.raises(ClusteringError):
            gmm_clustering(two_triangles, 2, first_center=10)


class TestFarthestPointSemantics:
    def test_second_center_is_farthest(self, two_triangles):
        clustering = gmm_clustering(two_triangles, 2, first_center=0)
        dist = dijkstra_distances(two_triangles, [0])[0]
        assert dist[clustering.centers[1]] == pytest.approx(dist.max())

    def test_picks_other_component_first(self):
        g = UncertainGraph.from_edges([(0, 1, 0.9), (2, 3, 0.9)])
        clustering = gmm_clustering(g, 2, first_center=0)
        assert clustering.centers[1] in (2, 3)

    def test_assignment_is_nearest_center(self):
        rng = np.random.default_rng(5)
        graph = random_graph(15, 0.3, rng, prob_low=0.2)
        clustering = gmm_clustering(graph, 4, seed=2)
        dist = dijkstra_distances(graph, clustering.centers)
        for node in range(graph.n_nodes):
            best = dist[:, node].min()
            chosen = dist[clustering.assignment[node], node]
            assert chosen == pytest.approx(best)

    def test_proxy_probability_is_most_probable_path(self, path4):
        clustering = gmm_clustering(path4, 1, first_center=0)
        # exp(-(w01 + w12 + w23)) = p01 * p12 * p23
        assert clustering.center_connection[3] == pytest.approx(0.9 * 0.5 * 0.8)

    def test_duplicate_zero_distances_handled(self):
        # Certain edges give distance 0; centers must stay distinct.
        g = UncertainGraph.from_edges([(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)])
        clustering = gmm_clustering(g, 3, first_center=0)
        assert len(set(clustering.centers.tolist())) == 3
