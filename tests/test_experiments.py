"""End-to-end tests of the experiment harness (tiny scale)."""

import numpy as np
import pytest

from repro import ExperimentError
from repro.experiments import get_scale, run_quality_suite
from repro.experiments import figure1, figure2, figure3, figure4, table1, table2
from repro.experiments.config import SCALES


class TestConfig:
    def test_presets_exist(self):
        assert set(SCALES) == {"tiny", "small", "paper"}

    def test_get_scale_by_name(self):
        assert get_scale("tiny").name == "tiny"

    def test_get_scale_passthrough(self):
        scale = SCALES["tiny"]
        assert get_scale(scale) is scale

    def test_unknown_scale(self):
        with pytest.raises(ExperimentError):
            get_scale("huge")


@pytest.fixture(scope="module")
def tiny_suite():
    return run_quality_suite("tiny", seed=0, datasets=("gavin",))


class TestQualitySuite:
    def test_all_algorithms_present(self, tiny_suite):
        algorithms = {record.algorithm for record in tiny_suite.records}
        assert algorithms == {"gmm", "mcl", "mcp", "acp"}

    def test_graph_stats_recorded(self, tiny_suite):
        assert tiny_suite.graph_stats[0]["graph"] == "gavin"
        assert tiny_suite.graph_stats[0]["nodes"] > 0

    def test_metrics_in_range(self, tiny_suite):
        for record in tiny_suite.records:
            if np.isnan(record.pmin):
                continue
            assert 0.0 <= record.pmin <= 1.0
            assert 0.0 <= record.pavg <= 1.0
            assert record.pmin <= record.pavg + 1e-9
            assert record.time_ms >= 0.0

    def test_mcp_wins_pmin(self, tiny_suite):
        # The paper's headline: mcp has the best pmin at every k.
        by_k = {}
        for record in tiny_suite.records:
            by_k.setdefault(record.k, {})[record.algorithm] = record
        for _k, records in by_k.items():
            if len(records) < 4:
                continue
            mcp_pmin = records["mcp"].pmin
            for algorithm in ("gmm", "mcl"):
                assert mcp_pmin >= records[algorithm].pmin - 0.05

    def test_for_graph_filter(self, tiny_suite):
        assert all(r.graph == "gavin" for r in tiny_suite.for_graph("gavin"))
        assert tiny_suite.for_graph("dblp") == []

    def test_records_sorted(self, tiny_suite):
        ks = [record.k for record in tiny_suite.records]
        assert ks == sorted(ks)


class TestExhibits:
    def test_table1(self):
        table = table1.run("tiny", seed=0)
        assert len(table) == 4
        rendered = table.render()
        assert "collins" in rendered
        assert "636751" in rendered  # paper reference values included

    def test_figure_builders_share_suite(self, tiny_suite):
        fig1 = figure1.build_table(tiny_suite)
        fig2 = figure2.build_table(tiny_suite)
        fig3 = figure3.build_table(tiny_suite)
        assert len(fig1) == len(fig2) == len(fig3) == len(tiny_suite.records)
        assert "pmin" in fig1.render()
        assert "inner_avpr" in fig2.render()
        assert "time_ms" in fig3.render()

    def test_figure4_rows(self):
        table = figure4.run("tiny", seed=0)
        algorithms = {row["algorithm"] for row in table.rows}
        assert algorithms == {"mcp", "mcl"}
        mcp_rows = [row for row in table.rows if row["algorithm"] == "mcp"]
        assert len(mcp_rows) == len(get_scale("tiny").figure4_k_fractions)

    def test_table2_rows(self):
        table = table2.run("tiny", seed=0)
        algorithms = [row["algorithm"] for row in table.rows]
        assert algorithms.count("mcp") == len(get_scale("tiny").table2_depths)
        assert "mcl" in algorithms
        assert "kpt" in algorithms
        for row in table.rows:
            if not np.isnan(row["tpr"]):
                assert 0.0 <= row["tpr"] <= 1.0
                assert 0.0 <= row["fpr"] <= 1.0
