"""Tests for the Theorem 2 Set Cover -> MCP reduction."""

import pytest

from repro import ReproError
from repro.core.bruteforce import optimal_min_prob
from repro.reductions import (
    SetCoverInstance,
    greedy_set_cover,
    has_set_cover_of_size,
    set_cover_to_mcp,
)
from repro.reductions.set_cover import element_label, set_label
from repro.sampling import ExactOracle


@pytest.fixture
def instance():
    return SetCoverInstance(
        universe_size=4,
        sets=(frozenset({0, 1}), frozenset({2, 3}), frozenset({1, 2})),
    )


class TestInstance:
    def test_validation(self):
        with pytest.raises(ReproError):
            SetCoverInstance(universe_size=0, sets=())
        with pytest.raises(ReproError):
            SetCoverInstance(universe_size=2, sets=(frozenset({5}),))

    def test_coverable(self, instance):
        assert instance.is_coverable()
        partial = SetCoverInstance(universe_size=3, sets=(frozenset({0}),))
        assert not partial.is_coverable()

    def test_bruteforce_decision(self, instance):
        assert not has_set_cover_of_size(instance, 1)
        assert has_set_cover_of_size(instance, 2)
        assert has_set_cover_of_size(instance, 3)

    def test_greedy_returns_cover(self, instance):
        chosen = greedy_set_cover(instance)
        covered = set()
        for index in chosen:
            covered |= instance.sets[index]
        assert covered == set(range(4))

    def test_greedy_uncoverable_raises(self):
        bad = SetCoverInstance(universe_size=3, sets=(frozenset({0}),))
        with pytest.raises(ReproError):
            greedy_set_cover(bad)


class TestReductionGraph:
    def test_structure(self, instance):
        graph, eps = set_cover_to_mcp(instance, eps=1e-4)
        # Nodes: 4 elements + 3 sets.
        assert graph.n_nodes == 7
        # Edges: sum |S_i| membership + C(3,2) clique.
        assert graph.n_edges == 6 + 3
        assert all(p == eps for _, _, p in graph.edge_list())

    def test_membership_edges(self, instance):
        graph, _ = set_cover_to_mcp(instance, eps=1e-4)
        u1 = graph.index_of(element_label(1))
        s0 = graph.index_of(set_label(0))
        s1 = graph.index_of(set_label(1))
        assert graph.has_edge(u1, s0)
        assert not graph.has_edge(u1, s1)

    def test_set_clique(self, instance):
        graph, _ = set_cover_to_mcp(instance, eps=1e-4)
        indices = [graph.index_of(set_label(j)) for j in range(3)]
        for a in indices:
            for b in indices:
                if a != b:
                    assert graph.has_edge(a, b)

    def test_default_eps_is_tiny(self, instance):
        _, eps = set_cover_to_mcp(instance)
        assert 0 < eps <= 1e-12

    def test_uncoverable_rejected(self):
        bad = SetCoverInstance(universe_size=3, sets=(frozenset({0}),))
        with pytest.raises(ReproError):
            set_cover_to_mcp(bad)

    def test_bad_eps(self, instance):
        with pytest.raises(ReproError):
            set_cover_to_mcp(instance, eps=2.0)


class TestTheorem2Equivalence:
    """k-clustering with min-prob >= eps exists iff a k-cover exists."""

    @pytest.mark.parametrize(
        "universe,sets",
        [
            (3, ({0, 1}, {1, 2}, {0, 2})),
            (4, ({0, 1}, {2, 3}, {1, 2})),
            (4, ({0}, {1}, {2}, {3})),
            (5, ({0, 1, 2}, {2, 3, 4}, {1, 3})),
        ],
    )
    def test_equivalence(self, universe, sets):
        instance = SetCoverInstance(universe, tuple(frozenset(s) for s in sets))
        graph, eps = set_cover_to_mcp(instance, eps=1e-4)
        oracle = ExactOracle(graph, max_uncertain_edges=24)
        for k in range(1, min(len(sets) + 1, 5)):
            p_opt, _ = optimal_min_prob(oracle, k)
            clustering_exists = p_opt >= eps
            cover_exists = has_set_cover_of_size(instance, k)
            assert clustering_exists == cover_exists, (
                f"k={k}: clustering {clustering_exists} != cover {cover_exists}"
            )
