"""Tests for the ACP clustering driver (Algorithm 3)."""

import numpy as np
import pytest

from repro import ClusteringError, UncertainGraph, acp_clustering
from repro.core.bruteforce import optimal_avg_prob
from repro.metrics import avg_connection_probability
from repro.sampling import ExactOracle
from repro.utils.math import harmonic_number
from tests.conftest import random_graph


class TestBasics:
    def test_returns_full_clustering(self, two_triangles):
        result = acp_clustering(two_triangles, k=2, seed=0)
        assert result.clustering.covers_all

    def test_invariant_avg_at_least_phi(self, two_triangles):
        result = acp_clustering(two_triangles, k=2, seed=0)
        assert result.avg_prob_estimate >= result.phi_best - 1e-12

    def test_k_clusters(self, two_triangles):
        for k in (1, 3, 5):
            result = acp_clustering(two_triangles, k=k, seed=0)
            assert result.clustering.k == k

    def test_invalid_mode(self, two_triangles):
        with pytest.raises(ClusteringError, match="mode"):
            acp_clustering(two_triangles, k=2, mode="fast")

    def test_empty_guess_schedule_rejected(self, two_triangles):
        with pytest.raises(ClusteringError, match="empty"):
            acp_clustering(two_triangles, k=2, guess_schedule=[])

    def test_both_modes_run(self, two_triangles_oracle):
        practical = acp_clustering(None, 2, oracle=two_triangles_oracle, mode="practical")
        theoretical = acp_clustering(None, 2, oracle=two_triangles_oracle, mode="theoretical")
        assert practical.clustering.covers_all
        assert theoretical.clustering.covers_all
        assert practical.mode == "practical"
        assert theoretical.mode == "theoretical"

    def test_deterministic_with_seed(self, two_triangles):
        a = acp_clustering(two_triangles, k=2, seed=4)
        b = acp_clustering(two_triangles, k=2, seed=4)
        assert np.array_equal(a.clustering.assignment, b.clustering.assignment)
        assert a.phi_best == b.phi_best

    def test_history_recorded(self, two_triangles):
        result = acp_clustering(two_triangles, k=2, seed=0)
        assert result.n_guesses >= 1

    def test_separates_reliable_communities(self, two_triangles):
        result = acp_clustering(two_triangles, k=2, seed=1)
        assignment = result.clustering.assignment
        assert len(set(assignment[:3].tolist())) == 1
        assert len(set(assignment[3:].tolist())) == 1
        assert assignment[0] != assignment[5]


class TestStopCondition:
    def test_loop_stops_when_threshold_below_phi(self, two_triangles_oracle):
        # Once coverage_threshold(q) < phi_best, smaller guesses cannot win.
        result = acp_clustering(None, 2, oracle=two_triangles_oracle, mode="practical")
        final_qs = [record.q for record in result.history]
        # The loop must not have descended to the very bottom of the schedule.
        assert min(final_qs) > 1e-4

    def test_phi_counts_uncovered_as_zero(self):
        # One isolated low-probability node: phi at high q treats it as 0.
        g = UncertainGraph.from_edges(
            [(0, 1, 0.95), (1, 2, 0.95), (2, 3, 0.02)]
        )
        oracle = ExactOracle(g)
        result = acp_clustering(None, 2, oracle=oracle)
        # Completion must still cover node 3.
        assert result.clustering.covers_all


class TestGuarantee:
    """Theorem 4: avg-prob >= (p_opt_avg(k) / ((1+gamma) H(n)))^3."""

    @pytest.mark.parametrize("seed", range(6))
    def test_theoretical_mode_bound(self, seed):
        rng = np.random.default_rng(200 + seed)
        graph = random_graph(8, 0.4, rng, prob_low=0.25)
        oracle = ExactOracle(graph)
        gamma = 0.1
        n = graph.n_nodes
        for k in (2, 3):
            p_opt, _ = optimal_avg_prob(oracle, k)
            result = acp_clustering(
                None, k, oracle=oracle, mode="theoretical", gamma=gamma, seed=seed
            )
            achieved = avg_connection_probability(result.clustering, oracle)
            bound = (p_opt / ((1 + gamma) * harmonic_number(n))) ** 3
            assert achieved >= bound - 1e-12

    @pytest.mark.parametrize("seed", range(6))
    def test_practical_mode_also_meets_bound(self, seed):
        # Not guaranteed by the analysis, but the paper observes it holds
        # comfortably in practice; a regression here signals a bug.
        rng = np.random.default_rng(300 + seed)
        graph = random_graph(8, 0.4, rng, prob_low=0.25)
        oracle = ExactOracle(graph)
        for k in (2,):
            p_opt, _ = optimal_avg_prob(oracle, k)
            result = acp_clustering(None, k, oracle=oracle, mode="practical", seed=seed)
            achieved = avg_connection_probability(result.clustering, oracle)
            bound = (p_opt / (1.1 * harmonic_number(graph.n_nodes))) ** 3
            assert achieved >= bound - 1e-12


class TestDepthLimited:
    def test_depth_run_covers(self, two_triangles):
        result = acp_clustering(two_triangles, k=2, seed=0, depth=3)
        assert result.clustering.covers_all

    def test_theoretical_depth_requires_d_at_least_3(self, two_triangles_oracle):
        with pytest.raises(ClusteringError, match="depth >= 3"):
            acp_clustering(
                None, 2, oracle=two_triangles_oracle, mode="theoretical", depth=2
            )

    def test_theoretical_depth_inner_is_third(self, two_triangles_oracle):
        result = acp_clustering(
            None, 2, oracle=two_triangles_oracle, mode="theoretical", depth=6
        )
        assert result.clustering.covers_all

    def test_depth_guarantee_theorem6(self):
        rng = np.random.default_rng(55)
        graph = random_graph(8, 0.45, rng, prob_low=0.35)
        oracle = ExactOracle(graph)
        d, k, gamma = 6, 2, 0.1
        p_opt_third, _ = optimal_avg_prob(oracle, k, depth=d // 3)
        result = acp_clustering(
            None, k, oracle=oracle, mode="theoretical", depth=d, gamma=gamma, seed=0
        )
        achieved = avg_connection_probability(result.clustering, oracle, depth=d)
        bound = (p_opt_third / ((1 + gamma) * harmonic_number(graph.n_nodes))) ** 3
        assert achieved >= bound - 1e-12


class TestMonteCarloIntegration:
    def test_sampled_close_to_exact(self, two_triangles):
        exact = ExactOracle(two_triangles)
        sampled = acp_clustering(two_triangles, k=2, seed=5)
        achieved = avg_connection_probability(sampled.clustering, exact)
        reference_result = acp_clustering(None, 2, oracle=exact, seed=5)
        reference = avg_connection_probability(reference_result.clustering, exact)
        assert achieved >= reference * 0.8

    def test_samples_recorded(self, two_triangles):
        result = acp_clustering(two_triangles, k=2, seed=0)
        assert result.samples_used > 0
