"""Tests for min-partial (Algorithm 1 and the depth variant, Algorithm 4)."""

import numpy as np
import pytest

from repro import ClusteringError, MonteCarloOracle, UncertainGraph, min_partial
from repro.core.bruteforce import optimal_min_prob
from repro.sampling import ExactOracle
from tests.conftest import random_graph


class TestBasicInvariants:
    def test_covered_nodes_meet_threshold(self, two_triangles_oracle):
        result = min_partial(two_triangles_oracle, k=2, q=0.5, rng=0)
        clustering = result.clustering
        for node in np.flatnonzero(clustering.covered_mask):
            center = clustering.center_of(int(node))
            assert two_triangles_oracle.connection(center, int(node)) >= 0.5

    def test_uncovered_nodes_below_threshold_for_loop_centers(self, two_triangles_oracle):
        # Maximality: an uncovered node is below q for every loop center.
        result = min_partial(two_triangles_oracle, k=1, q=0.5, rng=0)
        clustering = result.clustering
        loop_centers = clustering.centers[: result.n_loop_centers]
        for node in np.flatnonzero(~clustering.covered_mask):
            for center in loop_centers:
                assert two_triangles_oracle.connection(int(center), int(node)) < 0.5

    def test_returns_k_distinct_centers(self, two_triangles_oracle):
        for k in (1, 2, 3, 5):
            result = min_partial(two_triangles_oracle, k=k, q=0.9, rng=1)
            assert result.clustering.k == k
            assert len(set(result.clustering.centers.tolist())) == k

    def test_padding_when_all_covered_early(self, two_triangles_oracle):
        # q tiny: the first center covers its whole component.
        result = min_partial(two_triangles_oracle, k=3, q=1e-6, rng=0)
        assert result.n_loop_centers < 3
        assert result.clustering.k == 3
        assert result.clustering.covers_all

    def test_center_rows_match_oracle(self, two_triangles_oracle):
        result = min_partial(two_triangles_oracle, k=2, q=0.5, rng=0)
        for i, center in enumerate(result.clustering.centers):
            assert np.allclose(
                result.center_rows[i],
                two_triangles_oracle.connection_to_all(int(center)),
            )

    def test_assignment_is_best_center(self, two_triangles_oracle):
        result = min_partial(two_triangles_oracle, k=2, q=0.4, rng=0)
        clustering = result.clustering
        centers = clustering.centers
        for node in np.flatnonzero(clustering.covered_mask):
            if node in centers:
                continue
            best = max(
                range(len(centers)),
                key=lambda i, node=node: two_triangles_oracle.connection(
                    int(centers[i]), int(node)
                ),
            )
            assert clustering.assignment[node] == best

    def test_carried_probabilities_consistent(self, two_triangles_oracle):
        result = min_partial(two_triangles_oracle, k=2, q=0.4, rng=0)
        clustering = result.clustering
        for node in np.flatnonzero(clustering.covered_mask):
            center = clustering.center_of(int(node))
            assert clustering.center_connection[node] == pytest.approx(
                two_triangles_oracle.connection(center, int(node))
            )


class TestParameters:
    def test_invalid_k(self, two_triangles_oracle):
        with pytest.raises(ClusteringError):
            min_partial(two_triangles_oracle, k=0, q=0.5)
        with pytest.raises(ClusteringError):
            min_partial(two_triangles_oracle, k=6, q=0.5)

    def test_invalid_q(self, two_triangles_oracle):
        with pytest.raises(ClusteringError):
            min_partial(two_triangles_oracle, k=2, q=0.0)
        with pytest.raises(ClusteringError):
            min_partial(two_triangles_oracle, k=2, q=1.5)

    def test_q_bar_must_dominate_q(self, two_triangles_oracle):
        with pytest.raises(ClusteringError):
            min_partial(two_triangles_oracle, k=2, q=0.5, q_bar=0.3)

    def test_inner_depth_requires_depth(self, two_triangles_oracle):
        with pytest.raises(ClusteringError):
            min_partial(two_triangles_oracle, k=2, q=0.5, inner_depth=2)

    def test_invalid_alpha(self, two_triangles_oracle):
        with pytest.raises(ClusteringError):
            min_partial(two_triangles_oracle, k=2, q=0.5, alpha=0)

    def test_deterministic_under_seed(self, two_triangles):
        oracle = MonteCarloOracle(two_triangles, seed=1)
        oracle.ensure_samples(500)
        a = min_partial(oracle, k=2, q=0.5, rng=7)
        b = min_partial(oracle, k=2, q=0.5, rng=7)
        assert np.array_equal(a.clustering.assignment, b.clustering.assignment)
        assert np.array_equal(a.clustering.centers, b.clustering.centers)


class TestAlphaGreedy:
    def test_alpha_n_picks_max_coverage_center(self):
        # A star center covers everything at q; leaves cover only
        # themselves and the hub.  With alpha = n the hub must win.
        g = UncertainGraph.from_edges([(0, i, 0.9) for i in range(1, 6)])
        oracle = ExactOracle(g)
        result = min_partial(oracle, k=1, q=0.5, alpha=g.n_nodes, q_bar=0.5, rng=0)
        assert result.clustering.centers[0] == 0
        assert result.clustering.covers_all

    def test_alpha_one_picks_arbitrary_center(self):
        g = UncertainGraph.from_edges([(0, i, 0.9) for i in range(1, 6)])
        oracle = ExactOracle(g)
        # With alpha=1 and a seeded rng the center is whatever node was
        # drawn; coverage may be partial if a leaf is drawn.
        result = min_partial(oracle, k=1, q=0.5, alpha=1, rng=3)
        assert result.clustering.k == 1

    def test_higher_q_bar_changes_selection(self):
        # Node 0 covers many nodes weakly; node 5 covers few strongly.
        edges = [(0, i, 0.55) for i in range(1, 5)]
        edges += [(5, 6, 0.95), (5, 7, 0.95)]
        g = UncertainGraph.from_edges(edges)
        oracle = ExactOracle(g)
        weak = min_partial(oracle, k=1, q=0.5, q_bar=0.5, alpha=g.n_nodes, rng=0)
        strong = min_partial(oracle, k=1, q=0.5, q_bar=0.9, alpha=g.n_nodes, rng=0)
        assert weak.clustering.centers[0] == 0
        assert strong.clustering.centers[0] == 5


class TestLemma2:
    """Lemma 2: q <= p_opt_min(k)^2 implies full coverage."""

    @pytest.mark.parametrize("seed", range(6))
    def test_full_cover_at_squared_optimum(self, seed):
        rng = np.random.default_rng(seed)
        graph = random_graph(9, 0.35, rng, prob_low=0.3)
        oracle = ExactOracle(graph)
        for k in (2, 3):
            p_opt, _ = optimal_min_prob(oracle, k)
            if p_opt == 0.0:
                continue  # more components than clusters
            result = min_partial(oracle, k=k, q=p_opt**2, rng=seed)
            assert result.covers_all, (
                f"min-partial must cover all nodes at q = p_opt^2 = {p_opt**2}"
            )


class TestDepthVariant:
    def test_depth_thresholds_respected(self, two_triangles_oracle):
        result = min_partial(two_triangles_oracle, k=2, q=0.4, depth=2, rng=0)
        clustering = result.clustering
        for node in np.flatnonzero(clustering.covered_mask):
            center = clustering.center_of(int(node))
            assert two_triangles_oracle.connection(center, int(node), depth=2) >= 0.4

    def test_depth_coverage_no_better_than_unbounded(self, two_triangles_oracle):
        free = min_partial(two_triangles_oracle, k=1, q=0.4, rng=0)
        limited = min_partial(two_triangles_oracle, k=1, q=0.4, depth=1, rng=0)
        assert limited.clustering.n_covered <= free.clustering.n_covered

    def test_inner_depth_defaults_to_depth(self, two_triangles_oracle):
        result = min_partial(two_triangles_oracle, k=2, q=0.4, depth=2, rng=0)
        assert result.inner_depth == 2

    def test_lemma5_full_cover_at_half_depth_optimum(self):
        rng = np.random.default_rng(4)
        graph = random_graph(8, 0.4, rng, prob_low=0.4)
        oracle = ExactOracle(graph)
        d = 4
        p_opt, _ = optimal_min_prob(oracle, 2, depth=d // 2)
        if p_opt > 0:
            result = min_partial(oracle, k=2, q=p_opt**2, depth=d, rng=0)
            assert result.covers_all


class TestMonteCarloRelaxation:
    def test_eps_relaxes_thresholds(self, two_triangles):
        oracle = MonteCarloOracle(two_triangles, seed=0)
        oracle.ensure_samples(2000)
        # With eps, nodes at estimated (1 - eps/2) q still count as covered.
        strict = min_partial(oracle, k=2, q=0.9, eps=0.0, rng=1)
        relaxed = min_partial(oracle, k=2, q=0.9, eps=0.5, rng=1)
        assert relaxed.clustering.n_covered >= strict.clustering.n_covered
