"""Tests for the pair-level prediction (confusion) metrics."""

import numpy as np
import pytest

from repro import Clustering, ClusteringError
from repro.core.clustering import UNCOVERED
from repro.metrics.prediction import PairConfusion, pair_confusion


def clustering_of(assignment, centers, n=None):
    assignment = np.asarray(assignment, dtype=np.int32)
    n = n if n is not None else len(assignment)
    return Clustering(n, np.asarray(centers), assignment)


class TestPairConfusionCounts:
    def test_perfect_prediction(self):
        clustering = clustering_of([0, 0, 1, 1], [0, 2])
        complexes = [np.array([0, 1]), np.array([2, 3])]
        confusion = pair_confusion(clustering, complexes)
        assert confusion.tp == 2
        assert confusion.fp == 0
        assert confusion.fn == 0
        assert confusion.tn == 4
        assert confusion.tpr == 1.0
        assert confusion.fpr == 0.0

    def test_exact_counts_hand_checked(self):
        # Universe {0,1,2,3}; truth pairs: (0,1), (2,3).
        # Prediction: {0,1,2} together, {3} alone.
        clustering = clustering_of([0, 0, 0, 1], [0, 3])
        complexes = [np.array([0, 1]), np.array([2, 3])]
        confusion = pair_confusion(clustering, complexes)
        # predicted pairs: (0,1) TP, (0,2) FP, (1,2) FP
        # not predicted: (2,3) FN; (0,3), (1,3) TN
        assert (confusion.tp, confusion.fp, confusion.fn, confusion.tn) == (1, 2, 1, 2)
        assert confusion.tpr == pytest.approx(0.5)
        assert confusion.fpr == pytest.approx(0.5)

    def test_universe_restricted_to_complex_members(self):
        # Node 4 is in no complex: pairs involving it must not count.
        clustering = clustering_of([0, 0, 0, 1, 0], [0, 3])
        complexes = [np.array([0, 1]), np.array([2, 3])]
        confusion = pair_confusion(clustering, complexes)
        assert confusion.n_pairs == 6  # C(4,2), not C(5,2)

    def test_overlapping_complexes(self):
        # Node 1 belongs to both complexes: (0,1) and (1,2) are truth.
        clustering = clustering_of([0, 0, 0], [0])
        complexes = [np.array([0, 1]), np.array([1, 2])]
        confusion = pair_confusion(clustering, complexes)
        assert confusion.tp == 2
        assert confusion.fp == 1  # (0,2) predicted but never co-complexed

    def test_uncovered_nodes_predict_nothing(self):
        clustering = clustering_of([0, UNCOVERED, UNCOVERED], [0])
        complexes = [np.array([0, 1, 2])]
        confusion = pair_confusion(clustering, complexes)
        assert confusion.tp == 0
        assert confusion.fn == 3

    def test_raw_assignment_accepted(self):
        confusion = pair_confusion(
            np.array([0, 0, 1, 1], dtype=np.int32),
            [np.array([0, 1]), np.array([2, 3])],
        )
        assert confusion.tpr == 1.0

    def test_assignment_length_check(self):
        with pytest.raises(ClusteringError):
            pair_confusion(np.array([0, 0]), [np.array([0, 1])], n_nodes=5)

    def test_member_out_of_range(self):
        clustering = clustering_of([0, 0], [0])
        with pytest.raises(ClusteringError):
            pair_confusion(clustering, [np.array([0, 9])])

    def test_requires_complexes(self):
        clustering = clustering_of([0, 0], [0])
        with pytest.raises(ClusteringError):
            pair_confusion(clustering, [])

    def test_single_member_universe_rejected(self):
        clustering = clustering_of([0, 0], [0])
        with pytest.raises(ClusteringError):
            pair_confusion(clustering, [np.array([1])])


class TestRates:
    def test_rates_nan_when_undefined(self):
        confusion = PairConfusion(tp=0, fp=0, fn=0, tn=5)
        assert np.isnan(confusion.tpr)
        confusion = PairConfusion(tp=3, fp=0, fn=0, tn=0)
        assert np.isnan(confusion.fpr)

    def test_precision_f1(self):
        confusion = PairConfusion(tp=6, fp=2, fn=2, tn=10)
        assert confusion.precision == pytest.approx(0.75)
        assert confusion.tpr == pytest.approx(0.75)
        assert confusion.f1 == pytest.approx(0.75)

    def test_f1_nan_when_empty(self):
        confusion = PairConfusion(tp=0, fp=0, fn=0, tn=1)
        assert np.isnan(confusion.f1)

    def test_n_pairs(self):
        confusion = PairConfusion(tp=1, fp=2, fn=3, tn=4)
        assert confusion.n_pairs == 10
