"""Property-based tests (hypothesis) for the paper's core invariants.

The central one is Theorem 1 — the multiplicative triangle inequality
``Pr(u~z) >= Pr(u~v) * Pr(v~z)`` — verified with exact probabilities on
randomly drawn uncertain graphs, together with its depth-limited
analogue (Eq. 6) and the structural invariants of sampling and
clustering primitives.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import UncertainGraph, min_partial
from repro.sampling import ExactOracle, MonteCarloOracle

MAX_NODES = 7


@st.composite
def uncertain_graphs(draw, max_nodes=MAX_NODES, max_edges=12):
    """Random small uncertain graphs (exact enumeration stays feasible)."""
    n = draw(st.integers(3, max_nodes))
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    count = draw(st.integers(1, min(max_edges, len(pairs))))
    indices = draw(
        st.lists(
            st.integers(0, len(pairs) - 1), min_size=count, max_size=count, unique=True
        )
    )
    probs = draw(
        st.lists(
            st.floats(0.05, 1.0, allow_nan=False), min_size=count, max_size=count
        )
    )
    edges = [(pairs[i][0], pairs[i][1], p) for i, p in zip(indices, probs, strict=True)]
    return UncertainGraph.from_edges(edges, nodes=range(n))


class TestTriangleInequality:
    @given(uncertain_graphs())
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_theorem1_all_triples(self, graph):
        oracle = ExactOracle(graph)
        matrix = oracle.pairwise_matrix()
        n = graph.n_nodes
        for u in range(n):
            for v in range(n):
                for z in range(n):
                    assert matrix[u, z] >= matrix[u, v] * matrix[v, z] - 1e-9

    @given(uncertain_graphs(max_nodes=6, max_edges=9), st.integers(1, 2), st.integers(1, 2))
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_eq6_depth_composition(self, graph, d1, d2):
        # Pr(u ~d z) >= Pr(u ~d1 v) * Pr(v ~d2 z) whenever d >= d1 + d2.
        oracle = ExactOracle(graph)
        m1 = oracle.pairwise_matrix(depth=d1)
        m2 = oracle.pairwise_matrix(depth=d2)
        m = oracle.pairwise_matrix(depth=d1 + d2)
        n = graph.n_nodes
        for u in range(n):
            for v in range(n):
                for z in range(n):
                    assert m[u, z] >= m1[u, v] * m2[v, z] - 1e-9


class TestOracleProperties:
    @given(uncertain_graphs(max_nodes=6, max_edges=9))
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_exact_matrix_is_valid(self, graph):
        matrix = ExactOracle(graph).pairwise_matrix()
        assert np.allclose(matrix, matrix.T)
        assert np.allclose(np.diag(matrix), 1.0)
        assert np.all(matrix >= -1e-12)
        assert np.all(matrix <= 1.0 + 1e-12)

    @given(uncertain_graphs(max_nodes=6, max_edges=9))
    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_depth_monotone_up_to_unbounded(self, graph):
        oracle = ExactOracle(graph)
        previous = oracle.pairwise_matrix(depth=1)
        for depth in (2, 3, None):
            current = oracle.pairwise_matrix(depth=depth)
            assert np.all(previous <= current + 1e-12)
            previous = current

    @given(uncertain_graphs(max_nodes=6, max_edges=9), st.integers(0, 2**31 - 1))
    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_monte_carlo_within_chernoff_band(self, graph, seed):
        # With 2000 samples, estimates stay within a generous band of the
        # exact value (band chosen so false failures are ~impossible).
        exact = ExactOracle(graph).pairwise_matrix()
        oracle = MonteCarloOracle(graph, seed=seed)
        oracle.ensure_samples(2000)
        estimate = oracle.pairwise_matrix()
        assert np.all(np.abs(estimate - exact) <= 0.08)

    @given(uncertain_graphs(max_nodes=6, max_edges=9))
    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_probability_one_edges_always_connected(self, graph):
        oracle = ExactOracle(graph)
        for u, v, p in zip(graph.edge_src, graph.edge_dst, graph.edge_prob, strict=True):
            if p == 1.0:
                # World probabilities are accumulated in floating point,
                # so "certain" sums land within an ulp of 1.
                assert oracle.connection(int(u), int(v)) >= 1.0 - 1e-9


class TestMinPartialProperties:
    @given(
        uncertain_graphs(max_nodes=6, max_edges=9),
        st.integers(1, 3),
        st.floats(0.05, 0.95),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_invariants_hold_for_any_threshold(self, graph, k, q, seed):
        if k >= graph.n_nodes:
            k = graph.n_nodes - 1
        oracle = ExactOracle(graph)
        result = min_partial(oracle, k=k, q=q, rng=seed)
        clustering = result.clustering
        # k distinct centers, each in its own cluster.
        assert clustering.k == k
        assert len(set(clustering.centers.tolist())) == k
        # Covered nodes meet the threshold to their own center.
        matrix = oracle.pairwise_matrix()
        for node in np.flatnonzero(clustering.covered_mask):
            center = clustering.center_of(int(node))
            assert matrix[center, node] >= q - 1e-12
        # Uncovered nodes fail the threshold for all loop centers.
        loop_centers = clustering.centers[: result.n_loop_centers]
        for node in np.flatnonzero(~clustering.covered_mask):
            for center in loop_centers:
                assert matrix[center, node] < q

    @given(uncertain_graphs(max_nodes=6, max_edges=9), st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_lower_threshold_covers_no_fewer(self, graph, seed):
        oracle = ExactOracle(graph)
        high = min_partial(oracle, k=2, q=0.8, rng=seed)
        low = min_partial(oracle, k=2, q=0.2, rng=seed)
        assert low.clustering.n_covered >= high.clustering.n_covered
