"""Tests for the API reference generator / docstring gate (docs/gen_api.py)."""

import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
GEN_API = REPO_ROOT / "docs" / "gen_api.py"

sys.path.insert(0, str(GEN_API.parent))
import gen_api  # noqa: E402


@pytest.fixture
def fake_package(tmp_path, monkeypatch):
    """A tiny importable package the generator can walk."""
    pkg = tmp_path / "fakepkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text('"""Fake package."""\n')
    (pkg / "good.py").write_text(
        textwrap.dedent(
            '''
            """A documented module.

            Examples
            --------
            >>> 1 + 1
            2
            """

            def add(a, b):
                """Add two numbers.

                >>> add(2, 3)
                5
                """
                return a + b

            class Thing:
                """A documented class."""

                @property
                def value(self):
                    """The value."""
                    return 1
            '''
        )
    )
    monkeypatch.syspath_prepend(str(tmp_path))
    for name in [n for n in sys.modules if n.split(".")[0] == "fakepkg"]:
        del sys.modules[name]
    yield pkg
    for name in [n for n in sys.modules if n.split(".")[0] == "fakepkg"]:
        del sys.modules[name]


class TestBuild:
    def test_builds_markdown_pages(self, fake_package, tmp_path, capsys):
        out = tmp_path / "api"
        assert gen_api.build("fakepkg", out) == 0
        index = (out / "index.md").read_text()
        assert "fakepkg/good.md" in index
        page = (out / "fakepkg" / "good.md").read_text()
        assert "### `add(a, b)`" in page
        assert ">>> add(2, 3)" in page
        assert "`value`** (property)" in page

    def test_check_mode_writes_nothing(self, fake_package, tmp_path):
        out = tmp_path / "api"
        assert gen_api.build("fakepkg", None) == 0
        assert not out.exists()

    def test_missing_docstring_warns_but_passes(self, fake_package, tmp_path, capsys):
        (fake_package / "bare.py").write_text("def undocumented():\n    return 1\n")
        assert gen_api.build("fakepkg", None) == 0
        assert "undocumented: public function has no docstring" in capsys.readouterr().err

    def test_malformed_doctest_fails(self, fake_package, capsys):
        (fake_package / "broken.py").write_text(
            '"""Module.\n\n>>>print(1)\n"""\n'
        )
        # A `>>>` prompt with no space before the source is the classic
        # doctest syntax error ("lacks blank after >>>") the gate must catch.
        assert gen_api.build("fakepkg", None) == 1
        assert "docstring syntax error" in capsys.readouterr().err

    def test_import_error_fails(self, fake_package, capsys):
        (fake_package / "crash.py").write_text("raise RuntimeError('boom')\n")
        assert gen_api.build("fakepkg", None) == 1
        assert "import failed" in capsys.readouterr().err


class TestRealPackage:
    def test_repro_reference_builds_clean(self, tmp_path):
        """The real package must pass its own docstring gate."""
        result = subprocess.run(
            [sys.executable, str(GEN_API), "-o", str(tmp_path / "api")],
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
        )
        assert result.returncode == 0, result.stderr
        assert "0 errors" in result.stdout
        assert (tmp_path / "api" / "repro" / "sampling" / "store.md").exists()
