"""Tests for sample-size formulas and schedules (Eq. 4, 9, 10)."""

import math

import pytest

from repro.sampling.sizes import (
    PracticalSchedule,
    TheoreticalACPSchedule,
    TheoreticalMCPSchedule,
    acp_sample_size,
    epsilon_delta_sample_size,
    mcp_sample_size,
)


class TestEpsilonDelta:
    def test_closed_form(self):
        # r = ceil(3 ln(2/delta) / (eps^2 p))
        expected = math.ceil(3 * math.log(2 / 0.05) / (0.1**2 * 0.5))
        assert epsilon_delta_sample_size(0.5, 0.1, 0.05) == expected

    def test_monotone_in_p(self):
        assert epsilon_delta_sample_size(0.1, 0.2, 0.1) > epsilon_delta_sample_size(
            0.5, 0.2, 0.1
        )

    def test_monotone_in_eps(self):
        assert epsilon_delta_sample_size(0.5, 0.05, 0.1) > epsilon_delta_sample_size(
            0.5, 0.2, 0.1
        )

    @pytest.mark.parametrize("p", [0.0, -0.1, 1.5])
    def test_invalid_p(self, p):
        with pytest.raises(ValueError):
            epsilon_delta_sample_size(p, 0.1, 0.1)

    @pytest.mark.parametrize("eps", [0.0, 1.0])
    def test_invalid_eps(self, eps):
        with pytest.raises(ValueError):
            epsilon_delta_sample_size(0.5, eps, 0.1)


class TestScheduleFormulas:
    def test_mcp_closed_form(self):
        q, eps, gamma, n, p_lower = 0.25, 0.3, 0.1, 100, 1e-4
        guesses = 1 + math.floor(math.log(1 / p_lower) / math.log(1 + gamma))
        expected = math.ceil(12 / (q * eps**2) * math.log(2 * n**3 * guesses))
        assert mcp_sample_size(q, eps=eps, gamma=gamma, n=n, p_lower=p_lower) == expected

    def test_acp_scales_with_q_cubed(self):
        small = acp_sample_size(0.5, eps=0.3, gamma=0.1, n=50, p_lower=1e-3)
        smaller = acp_sample_size(0.25, eps=0.3, gamma=0.1, n=50, p_lower=1e-3)
        assert smaller / small == pytest.approx(8.0, rel=0.05)

    def test_mcp_scales_with_q(self):
        base = mcp_sample_size(0.5, eps=0.3, gamma=0.1, n=50, p_lower=1e-3)
        halved = mcp_sample_size(0.25, eps=0.3, gamma=0.1, n=50, p_lower=1e-3)
        assert halved / base == pytest.approx(2.0, rel=0.05)

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            mcp_sample_size(0.0, eps=0.3, gamma=0.1, n=10, p_lower=1e-3)
        with pytest.raises(ValueError):
            acp_sample_size(1.5, eps=0.3, gamma=0.1, n=10, p_lower=1e-3)

    def test_dataclass_schedules_callable(self):
        mcp = TheoreticalMCPSchedule(eps=0.3, gamma=0.1, n=100, p_lower=1e-4)
        acp = TheoreticalACPSchedule(eps=0.3, gamma=0.1, n=100, p_lower=1e-4)
        assert mcp(0.5) == mcp_sample_size(0.5, eps=0.3, gamma=0.1, n=100, p_lower=1e-4)
        assert acp(0.5) == acp_sample_size(0.5, eps=0.3, gamma=0.1, n=100, p_lower=1e-4)
        # ACP needs reliable estimates down to q^3: always at least as many.
        assert acp(0.5) >= mcp(0.5)


class TestPracticalSchedule:
    def test_starts_at_min_samples(self):
        schedule = PracticalSchedule(min_samples=50, max_samples=2000, scale=50.0)
        assert schedule(1.0) == 50

    def test_grows_inversely_with_q(self):
        schedule = PracticalSchedule(min_samples=50, max_samples=10_000, scale=50.0)
        assert schedule(0.1) == 500
        assert schedule(0.01) == 5000

    def test_clamps_at_max(self):
        schedule = PracticalSchedule(min_samples=50, max_samples=2000, scale=50.0)
        assert schedule(1e-4) == 2000

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            PracticalSchedule(min_samples=0)
        with pytest.raises(ValueError):
            PracticalSchedule(min_samples=100, max_samples=50)
        with pytest.raises(ValueError):
            PracticalSchedule(scale=-1.0)

    def test_invalid_q(self):
        schedule = PracticalSchedule()
        with pytest.raises(ValueError):
            schedule(0.0)
