"""Failure-injection and edge-case tests across modules.

Production code is defined as much by how it fails as by how it
succeeds: these tests pin the error types, messages and recovery
behaviour for the ways users actually break things.
"""

import numpy as np
import pytest

from repro import (
    ClusteringError,
    GraphValidationError,
    MonteCarloOracle,
    OracleError,
    UncertainGraph,
    acp_clustering,
    mcp_clustering,
    min_partial,
)
from repro.baselines import mcl_clustering
from repro.sampling import ExactOracle
from repro.sampling.sizes import PracticalSchedule


class TestOracleBudgetExhaustion:
    def test_mcp_surfaces_oracle_error(self, two_triangles):
        # A sample schedule that demands more than the oracle's budget
        # must fail loudly, not silently degrade.
        oracle = MonteCarloOracle(two_triangles, seed=0, max_samples=10)
        with pytest.raises(OracleError, match="max_samples"):
            mcp_clustering(
                None, 2, oracle=oracle, seed=0,
                sample_schedule=lambda q: 1000,
            )

    def test_budget_error_leaves_oracle_usable(self, two_triangles):
        oracle = MonteCarloOracle(two_triangles, seed=0, max_samples=100)
        with pytest.raises(OracleError):
            oracle.ensure_samples(200)
        oracle.ensure_samples(100)  # still works within budget
        assert oracle.num_samples == 100

    def test_exact_oracle_edge_limit(self):
        edges = [(i, (i + 1) % 30, 0.5) for i in range(30)]
        graph = UncertainGraph.from_edges(edges)
        oracle = ExactOracle(graph, max_uncertain_edges=10)
        with pytest.raises(OracleError, match="uncertain edges"):
            oracle.connection(0, 1)


class TestDegenerateGraphs:
    def test_single_node_graph_rejects_clustering(self):
        graph = UncertainGraph(1, [], [], [])
        with pytest.raises(ClusteringError):
            mcp_clustering(graph, 1, seed=0)

    def test_edgeless_graph_clusters_as_singletons(self):
        graph = UncertainGraph(4, [], [], [])
        result = mcp_clustering(graph, 2, seed=0, p_lower=0.5)
        # Nothing is connected: the schedule bottoms out, best effort.
        assert not result.covers_all
        assert result.clustering.k == 2

    def test_all_certain_graph_single_guess(self):
        graph = UncertainGraph.from_edges([(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0)])
        result = mcp_clustering(graph, 2, seed=0)
        assert result.covers_all
        assert result.q_final == 1.0
        assert result.min_prob_estimate == 1.0

    def test_two_node_graph(self):
        graph = UncertainGraph.from_edges([(0, 1, 0.3)])
        result = mcp_clustering(graph, 1, seed=0)
        assert result.clustering.k == 1
        assert result.covers_all

    def test_k_equals_n_minus_one(self, two_triangles):
        result = acp_clustering(two_triangles, 5, seed=0)
        assert result.clustering.covers_all
        assert result.clustering.k == 5


class TestMalformedInputsDontCorruptState:
    def test_failed_min_partial_leaves_oracle_intact(self, two_triangles):
        oracle = MonteCarloOracle(two_triangles, seed=0)
        oracle.ensure_samples(100)
        with pytest.raises(ClusteringError):
            min_partial(oracle, k=0, q=0.5)
        assert oracle.num_samples == 100
        assert oracle.connection(0, 1) >= 0.0

    def test_graph_arrays_are_not_aliased(self):
        src = np.array([0, 1])
        dst = np.array([1, 2])
        prob = np.array([0.5, 0.5])
        graph = UncertainGraph(3, src, dst, prob)
        prob[0] = 0.99  # caller mutates their array afterwards
        # ascontiguousarray of a float64 array aliases; verify the graph
        # validated a snapshot OR still satisfies its invariants.
        assert np.all(graph.edge_prob > 0)
        assert np.all(graph.edge_prob <= 1.0)

    def test_validation_error_reports_offender(self):
        with pytest.raises(GraphValidationError, match="self loop"):
            UncertainGraph(3, [1], [1], [0.5])


class TestMCLNonConvergence:
    def test_max_iterations_reached_is_reported(self, two_triangles):
        result = mcl_clustering(two_triangles, max_iterations=1)
        assert not result.converged
        assert result.n_iterations == 1
        # The interpretation step must still return a valid partition.
        assert result.clustering.covers_all


class TestScheduleBottomingOut:
    def test_disconnected_graph_reports_partial(self):
        graph = UncertainGraph.from_edges(
            [(0, 1, 0.9), (2, 3, 0.9), (4, 5, 0.9), (6, 7, 0.9)]
        )
        result = mcp_clustering(graph, 2, seed=0, p_lower=0.05)
        assert not result.covers_all          # honest flag
        assert result.clustering.covers_all   # completed best effort
        assert result.min_prob_estimate == 0.0

    def test_acp_on_disconnected_graph_still_returns(self):
        graph = UncertainGraph.from_edges(
            [(0, 1, 0.9), (2, 3, 0.9), (4, 5, 0.9)]
        )
        result = acp_clustering(graph, 2, seed=0)
        assert result.clustering.covers_all
        # Two centers can cover at most 2 components reliably: 4/6 nodes.
        assert result.phi_best <= 4 / 6 + 1e-9

    def test_practical_schedule_never_exceeds_cap(self):
        schedule = PracticalSchedule(min_samples=50, max_samples=777, scale=50)
        for q in (1.0, 0.5, 0.01, 1e-4):
            assert 50 <= schedule(q) <= 777
