"""Tests of the dependency-free telemetry stack.

The load-bearing pins:

* counter increments from many threads sum **exactly** (no lost
  updates under the registry lock);
* a parent registry fed ``take_delta()`` payloads from two worker
  registries reports exactly the summed totals — the mechanism behind
  fleet-wide ``GET /v1/metrics`` in ``--workers N`` process mode,
  which is also exercised end to end over real worker processes;
* the label-cardinality cap folds overflow deterministically into the
  all-``"other"`` series, first-come label sets win;
* histogram bucket edges are pinned (dashboards depend on them);
* tracing never changes sampled worlds or labels — clustering output
  is bit-identical with the trace log on and off at the same seed.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro import telemetry
from repro.core.mcp import mcp_clustering
from repro.graph.uncertain_graph import UncertainGraph
from repro.sampling.sizes import PracticalSchedule
from repro.telemetry import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    OVERFLOW_LABEL,
    Tracer,
    parse_prometheus_text,
)

TIMEOUT = 30.0


def _toy_graph() -> UncertainGraph:
    return UncertainGraph.from_edges(
        [
            (0, 1, 0.9), (1, 2, 0.9), (0, 2, 0.8),
            (3, 4, 0.85), (4, 5, 0.85), (3, 5, 0.75),
            (2, 3, 0.05),
        ]
    )


class TestRegistryConcurrency:
    def test_threaded_counter_increments_sum_exactly(self):
        reg = MetricsRegistry()
        counter = reg.counter("repro_test_total", "Test.", ("worker",))
        threads, per_thread = 8, 500
        barrier = threading.Barrier(threads)

        def work(i: int) -> None:
            child = counter.labels(worker=str(i % 2))
            barrier.wait(TIMEOUT)
            for _ in range(per_thread):
                child.inc()

        pool = [threading.Thread(target=work, args=(i,)) for i in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join(TIMEOUT)
        total = sum(reg.value("repro_test_total", {"worker": w}) for w in ("0", "1"))
        assert total == threads * per_thread

    def test_threaded_histogram_observations_sum_exactly(self):
        reg = MetricsRegistry()
        hist = reg.histogram("repro_test_seconds", "Test.", buckets=(0.5,))
        threads, per_thread = 8, 300
        barrier = threading.Barrier(threads)

        def work() -> None:
            barrier.wait(TIMEOUT)
            for _ in range(per_thread):
                hist.observe(0.25)

        pool = [threading.Thread(target=work) for _ in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join(TIMEOUT)
        cell = reg.histogram_value("repro_test_seconds")
        assert cell["count"] == threads * per_thread
        assert cell["sum"] == pytest.approx(0.25 * threads * per_thread)


class TestDeltaShipping:
    """take_delta / merge_delta — the process-mode aggregation protocol."""

    def test_two_worker_deltas_merge_to_exact_sums(self):
        parent = MetricsRegistry()
        workers = [MetricsRegistry(), MetricsRegistry()]
        for i, worker in enumerate(workers):
            c = worker.counter("repro_jobs_done_total", "Jobs.", ("algo",))
            c.labels(algo="mcp").inc(3 + i)          # 3 and 4
            h = worker.histogram("repro_job_s", "Job.", buckets=(1.0, 5.0))
            h.observe(0.5)
            h.observe(2.0 + i * 10)                   # 2.0 and 12.0
            parent.merge_delta(worker.take_delta())

        assert parent.value("repro_jobs_done_total", {"algo": "mcp"}) == 7
        cell = parent.histogram_value("repro_job_s")
        assert cell["count"] == 4
        assert cell["sum"] == pytest.approx(0.5 + 2.0 + 0.5 + 12.0)
        # Bucket counts survived the merge: two <=1.0, one <=5.0, one +Inf.
        snap = parent.snapshot()["histograms"]["repro_job_s"][()]
        assert snap["buckets"] == [2, 1, 1]

    def test_take_delta_ships_only_movement(self):
        worker = MetricsRegistry()
        c = worker.counter("repro_x_total", "X.")
        c.inc(5)
        first = worker.take_delta()
        assert first["counters"]["repro_x_total"]["series"][()] == 5
        assert worker.take_delta()["counters"] == {}  # nothing moved
        c.inc(2)
        second = worker.take_delta()
        assert second["counters"]["repro_x_total"]["series"][()] == 2

    def test_local_only_families_never_ship(self):
        """Collector-mirrored series (repro_cache_*) stay per-process:
        summing them across workers would break the pinned equality
        between ``GET /v1/cache`` and ``GET /v1/metrics``."""
        worker = MetricsRegistry()
        worker.counter("repro_mirrored_total", "M.", local_only=True).inc(9)
        worker.counter("repro_shipped_total", "S.").inc(2)
        delta = worker.take_delta()
        assert "repro_mirrored_total" not in delta["counters"]
        assert delta["counters"]["repro_shipped_total"]["series"][()] == 2

    def test_merge_registers_unknown_families(self):
        """The parent need not have imported the defining module."""
        worker = MetricsRegistry()
        worker.counter("repro_novel_total", "Novel.", ("kind",)).labels(
            kind="a").inc()
        parent = MetricsRegistry()
        parent.merge_delta(worker.take_delta())
        assert parent.value("repro_novel_total", {"kind": "a"}) == 1
        assert 'repro_novel_total{kind="a"} 1' in parent.render()


class TestLabelCardinalityCap:
    def test_overflow_folds_into_other_deterministically(self):
        reg = MetricsRegistry()
        counter = reg.counter("repro_capped_total", "Capped.", ("who",),
                              max_label_sets=3)
        for who in ("a", "b", "c", "d", "e", "d"):
            counter.labels(who=who).inc()
        # First three label sets win; d and e fold into "other".
        assert reg.value("repro_capped_total", {"who": "a"}) == 1
        assert reg.value("repro_capped_total", {"who": "c"}) == 1
        assert reg.value("repro_capped_total", {"who": OVERFLOW_LABEL}) == 3
        rendered = reg.render()
        assert 'repro_capped_total{who="d"}' not in rendered
        assert f'repro_capped_total{{who="{OVERFLOW_LABEL}"}} 3' in rendered

    def test_existing_series_keep_working_past_the_cap(self):
        reg = MetricsRegistry()
        counter = reg.counter("repro_capped_total", "Capped.", ("who",),
                              max_label_sets=2)
        early = counter.labels(who="a")
        counter.labels(who="b").inc()
        counter.labels(who="z").inc()  # overflow
        early.inc(4)
        assert reg.value("repro_capped_total", {"who": "a"}) == 4


class TestHistogramBuckets:
    def test_default_bucket_edges_pinned(self):
        assert DEFAULT_BUCKETS == (
            0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
            0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
        )

    def test_edge_observation_lands_in_its_le_bucket(self):
        reg = MetricsRegistry()
        hist = reg.histogram("repro_h", "H.", buckets=(0.1, 1.0))
        hist.observe(0.1)    # exactly on an edge: le="0.1" is inclusive
        hist.observe(0.5)
        hist.observe(100.0)  # beyond the last edge: +Inf only
        rendered = reg.render()
        assert 'repro_h_bucket{le="0.1"} 1' in rendered
        assert 'repro_h_bucket{le="1"} 2' in rendered
        assert 'repro_h_bucket{le="+Inf"} 3' in rendered
        assert "repro_h_count 3" in rendered

    def test_unsorted_buckets_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.histogram("repro_bad", "Bad.", buckets=(1.0, 0.5))


class TestRendering:
    def test_render_is_valid_prometheus_text(self):
        reg = MetricsRegistry()
        reg.counter("repro_a_total", "A.", ("k",)).labels(k="x").inc(2)
        reg.gauge("repro_b", "B.").set(1.5)
        text = reg.render()
        assert "# HELP repro_a_total A.\n# TYPE repro_a_total counter" in text
        assert "# TYPE repro_b gauge" in text
        assert text.endswith("\n")
        parsed = parse_prometheus_text(text)
        assert parsed['repro_a_total{k="x"}'] == 2.0
        assert parsed["repro_b"] == 1.5

    def test_registration_is_idempotent_but_shape_checked(self):
        reg = MetricsRegistry()
        first = reg.counter("repro_a_total", "A.", ("k",))
        assert reg.counter("repro_a_total", "A.", ("k",)) is first
        with pytest.raises(ValueError):
            reg.counter("repro_a_total", "A.", ("other",))
        with pytest.raises(ValueError):
            reg.gauge("repro_a_total", "A.", ("k",))


class TestTracingBitIdentity:
    """The pinned invariant: telemetry never changes worlds or labels."""

    def _run(self) -> list[int]:
        result = mcp_clustering(
            _toy_graph(), 2, seed=0,
            sample_schedule=PracticalSchedule(max_samples=300),
        )
        return [int(x) for x in result.clustering.assignment]

    def test_labels_bit_identical_with_tracing_on(self, tmp_path):
        tracer = telemetry.get_tracer()
        assert not tracer.enabled
        baseline = self._run()
        log_path = tmp_path / "trace.jsonl"
        tracer.configure(log_path)
        try:
            traced = self._run()
        finally:
            tracer.configure(None)
        assert traced == baseline
        lines = log_path.read_text().splitlines()
        assert lines, "tracing enabled but no spans were written"
        for line in lines:
            record = json.loads(line)
            assert set(record) == {
                "trace_id", "span_id", "parent_id", "name", "ts",
                "dur_ms", "attrs",
            }
        assert any(json.loads(line)["name"] == "mcp.guess" for line in lines)

    def test_spans_nest_and_share_one_trace(self, tmp_path):
        tracer = Tracer(tmp_path / "t.jsonl")
        with tracer.trace("req-42"):
            with tracer.span("outer"):
                with tracer.span("inner") as inner:
                    inner.set("k", 1)
        tracer.close()
        records = [json.loads(line)
                   for line in (tmp_path / "t.jsonl").read_text().splitlines()]
        # Spans flush on exit, so inner precedes outer.
        by_name = {r["name"]: r for r in records}
        assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]
        assert by_name["outer"]["parent_id"] is None
        assert {r["trace_id"] for r in records} == {"req-42"}
        assert by_name["inner"]["attrs"] == {"k": 1}

    def test_disabled_tracer_is_inert(self):
        tracer = Tracer()
        with tracer.span("anything") as span:
            span.set("ignored", True)
        assert not tracer.enabled
