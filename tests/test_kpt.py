"""Tests for the kpt (pKwikCluster) baseline."""

import numpy as np
import pytest

from repro import ClusteringError, UncertainGraph
from repro.baselines.kpt import kpt_clustering
from repro.datasets import star_graph


class TestBasics:
    def test_partitions_all_nodes(self, two_triangles):
        clustering = kpt_clustering(two_triangles, seed=0)
        assert clustering.covers_all

    def test_deterministic_with_seed(self, two_triangles):
        a = kpt_clustering(two_triangles, seed=3)
        b = kpt_clustering(two_triangles, seed=3)
        assert np.array_equal(a.assignment, b.assignment)

    def test_pivots_are_centers(self, two_triangles):
        clustering = kpt_clustering(two_triangles, seed=1)
        for i, center in enumerate(clustering.centers):
            assert clustering.assignment[center] == i
            assert clustering.center_connection[center] == 1.0

    def test_members_connected_by_majority_edge(self, two_triangles):
        clustering = kpt_clustering(two_triangles, seed=2)
        for node in range(clustering.n_nodes):
            center = clustering.center_of(node)
            if node == center:
                continue
            p = two_triangles.edge_probability_between(node, center)
            assert p is not None and p >= 0.5

    def test_invalid_threshold(self, two_triangles):
        with pytest.raises(ClusteringError):
            kpt_clustering(two_triangles, threshold=0.0)
        with pytest.raises(ClusteringError):
            kpt_clustering(two_triangles, threshold=1.2)


class TestStarDecomposition:
    def test_star_collapses_to_one_cluster_when_pivot_is_hub(self):
        graph = star_graph(6, prob=0.9)
        # Force the hub to be drawn first by trying seeds.
        for seed in range(50):
            clustering = kpt_clustering(graph, seed=seed)
            if clustering.assignment[0] == 0 and clustering.k == 1:
                break
        else:
            pytest.fail("no seed made the hub the first pivot")

    def test_leaf_pivot_gives_many_clusters(self):
        graph = star_graph(6, prob=0.9)
        counts = [kpt_clustering(graph, seed=s).k for s in range(30)]
        # When a leaf pivots first, the star shatters: expect variance.
        assert max(counts) > 1

    def test_low_probability_edges_never_merge(self):
        g = UncertainGraph.from_edges([(0, 1, 0.2), (1, 2, 0.3)])
        clustering = kpt_clustering(g, seed=0)
        assert clustering.k == 3  # all singletons

    def test_cluster_count_not_controllable(self, two_triangles):
        # The paper's criticism: k emerges from pivoting; verify it is
        # at least n / (max_degree + 1).
        clustering = kpt_clustering(two_triangles, seed=5)
        max_degree = int(two_triangles.degrees().max())
        assert clustering.k >= two_triangles.n_nodes / (max_degree + 1)

    def test_custom_threshold(self):
        g = UncertainGraph.from_edges([(0, 1, 0.4)])
        default = kpt_clustering(g, seed=0)
        lenient = kpt_clustering(g, seed=0, threshold=0.3)
        assert default.k == 2
        assert lenient.k == 1
