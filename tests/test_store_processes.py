"""WorldStore flock protocol under *process* concurrency.

PR 3 made concurrent appends to one on-disk pool safe with an
``flock``-guarded append protocol; the multi-process service
(:class:`repro.service.workers.ProcessJobQueue`) now leans on it:
several spawned workers cold-sample the *same* digest concurrently.

The pin here runs two real child **processes** (not threads) that race
``ensure_samples`` on one store directory, then asserts

* the pool holds exactly the deterministic world sequence — every
  world is a pure function of ``(seed, index)``, so whichever process
  appends a chunk writes the same bytes;
* masks and labels are bit-identical to a serial single-process run.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

from repro.graph.uncertain_graph import UncertainGraph
from repro.sampling.oracle import MonteCarloOracle
from repro.sampling.store import WorldStore

EDGES = [
    (0, 1, 0.9), (1, 2, 0.9), (0, 2, 0.8),
    (3, 4, 0.85), (4, 5, 0.85), (3, 5, 0.75),
    (2, 3, 0.05),
]
SEED = 7
WORLDS = 768

CHILD_SCRIPT = """\
import os
import sys
import time

from repro.graph.uncertain_graph import UncertainGraph
from repro.sampling.oracle import MonteCarloOracle
from repro.sampling.store import WorldStore

store_dir, go_file, worlds = sys.argv[1], sys.argv[2], int(sys.argv[3])
graph = UncertainGraph.from_edges({edges!r})
deadline = time.monotonic() + 30.0
while not os.path.exists(go_file):
    if time.monotonic() > deadline:
        raise SystemExit("go signal never arrived")
    time.sleep(0.001)
with MonteCarloOracle(graph, seed={seed}, store=WorldStore(store_dir)) as oracle:
    oracle.ensure_samples(worlds)
    print(oracle.pool_digest)
"""


def _graph() -> UncertainGraph:
    return UncertainGraph.from_edges(EDGES)


def test_two_processes_cold_sampling_one_digest_bit_identical(tmp_path):
    shared = tmp_path / "shared"
    script = tmp_path / "child.py"
    go_file = tmp_path / "go"
    script.write_text(CHILD_SCRIPT.format(edges=EDGES, seed=SEED))

    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")

    children = [
        subprocess.Popen(
            [sys.executable, str(script), str(shared), str(go_file), str(WORLDS)],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        for _ in range(2)
    ]
    # Both children are up and polling before the gun goes off, so the
    # appends genuinely race instead of running back to back.
    time.sleep(0.2)
    go_file.write_text("go\n")
    outputs = []
    for child in children:
        out, err = child.communicate(timeout=120)
        assert child.returncode == 0, err
        outputs.append(out.strip())
    assert outputs[0] == outputs[1]  # same pool identity in both
    digest = outputs[0]

    # Serial reference in a fresh directory: the ground truth bytes.
    serial_dir = tmp_path / "serial"
    with MonteCarloOracle(_graph(), seed=SEED, store=WorldStore(serial_dir)) as oracle:
        oracle.ensure_samples(WORLDS)
        assert oracle.pool_digest == digest

    racy_store = WorldStore(shared)
    serial_store = WorldStore(serial_dir)
    # Reading requires the digest to be registered (validated) first.
    for store in (racy_store, serial_store):
        with MonteCarloOracle(_graph(), seed=SEED, store=store) as reader:
            assert reader.pool_digest == digest
    count = racy_store.count(digest)
    assert count >= WORLDS  # one consistent pool, no gaps or double-writes
    masks_racy, labels_racy = racy_store.read(digest, 0, WORLDS)
    masks_serial, labels_serial = serial_store.read(digest, 0, WORLDS)
    assert np.array_equal(masks_racy, masks_serial)
    assert np.array_equal(labels_racy, labels_serial)


def test_oracle_estimates_agree_after_concurrent_fill(tmp_path):
    """A reader over the racily-filled pool equals a serial oracle."""
    shared = tmp_path / "shared"
    script = tmp_path / "child.py"
    go_file = tmp_path / "go"
    script.write_text(CHILD_SCRIPT.format(edges=EDGES, seed=SEED))
    go_file.write_text("go\n")  # no race needed here; reuse the child

    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    child = subprocess.run(
        [sys.executable, str(script), str(shared), str(go_file), str(WORLDS)],
        env=env, capture_output=True, text=True, timeout=120,
    )
    assert child.returncode == 0, child.stderr

    with MonteCarloOracle(_graph(), seed=SEED, store=WorldStore(shared)) as warm:
        warm.ensure_samples(WORLDS)
        assert warm.cache_stats["worlds_sampled"] == 0  # served from disk
        warm_estimate = warm.connection(0, 2)
    with MonteCarloOracle(_graph(), seed=SEED) as cold:
        cold.ensure_samples(WORLDS)
        cold_estimate = cold.connection(0, 2)
    assert warm_estimate == cold_estimate
