"""Tests for the PPI-like dataset generators (paper Table 1 profiles)."""

import numpy as np
import pytest

from repro.datasets.ppi import collins_like, gavin_like, krogan_like
from repro.exceptions import GraphValidationError


@pytest.fixture(scope="module")
def krogan_small():
    return krogan_like(seed=7, scale=0.25)


class TestSizes:
    @pytest.mark.parametrize(
        "generator,n_target,m_target",
        [(collins_like, 1004, 8323), (gavin_like, 1727, 7534), (krogan_like, 2559, 7031)],
    )
    def test_scaled_sizes_close_to_targets(self, generator, n_target, m_target):
        scale = 0.2
        dataset = generator(seed=0, scale=scale)
        # Largest-CC restriction trims some nodes; stay within a band.
        assert dataset.graph.n_nodes <= n_target * scale + 1
        assert dataset.graph.n_nodes >= 0.5 * n_target * scale
        assert dataset.graph.n_edges <= m_target * scale + 1
        assert dataset.graph.n_edges >= 0.5 * m_target * scale

    def test_graph_is_connected(self, krogan_small):
        labels = krogan_small.graph.connected_components()
        assert len(np.unique(labels)) == 1

    def test_invalid_scale(self):
        with pytest.raises(GraphValidationError):
            krogan_like(scale=0.0)
        with pytest.raises(GraphValidationError):
            krogan_like(scale=2.0)

    def test_deterministic(self):
        a = krogan_like(seed=5, scale=0.1)
        b = krogan_like(seed=5, scale=0.1)
        assert np.array_equal(a.graph.edge_prob, b.graph.edge_prob)
        assert len(a.complexes) == len(b.complexes)


class TestProbabilityProfiles:
    def test_collins_mostly_high(self):
        dataset = collins_like(seed=1, scale=0.2)
        assert np.median(dataset.graph.edge_prob) > 0.6

    def test_gavin_mostly_low(self):
        dataset = gavin_like(seed=1, scale=0.2)
        assert np.median(dataset.graph.edge_prob) < 0.45

    def test_krogan_bimodal(self):
        dataset = krogan_like(seed=1, scale=0.5)
        prob = dataset.graph.edge_prob
        high = (prob > 0.9).mean()
        assert 0.15 <= high <= 0.35  # paper: one fourth above 0.9
        rest = prob[prob <= 0.9]
        assert rest.min() >= 0.27 - 1e-9

    def test_profiles_are_ordered(self):
        c = collins_like(seed=2, scale=0.15).graph.edge_prob.mean()
        g = gavin_like(seed=2, scale=0.15).graph.edge_prob.mean()
        assert c > g + 0.2


class TestComplexes:
    def test_complex_indices_valid(self, krogan_small):
        n = krogan_small.graph.n_nodes
        for complex_members in krogan_small.complexes:
            assert complex_members.min() >= 0
            assert complex_members.max() < n
            assert len(complex_members) >= 2
            assert len(np.unique(complex_members)) == len(complex_members)

    def test_complexes_cover_reasonable_fraction(self, krogan_small):
        covered = krogan_small.n_complex_proteins
        assert covered >= 0.3 * krogan_small.graph.n_nodes

    def test_complexes_are_denser_than_background(self, krogan_small):
        graph = krogan_small.graph
        in_complex = np.zeros(graph.n_nodes, dtype=bool)
        for members in krogan_small.complexes:
            in_complex[members] = True
        member_of = {}
        for idx, members in enumerate(krogan_small.complexes):
            for node in members:
                member_of[int(node)] = idx
        intra = sum(
            1
            for u, v in zip(graph.edge_src, graph.edge_dst, strict=True)
            if member_of.get(int(u)) is not None
            and member_of.get(int(u)) == member_of.get(int(v))
        )
        # A meaningful ground truth needs a solid fraction of intra edges
        # (the Krogan edge budget m/n ~ 2.7 caps how dense complexes can be).
        assert intra / graph.n_edges > 0.25

    def test_intra_complex_edges_more_reliable(self, krogan_small):
        graph = krogan_small.graph
        member_of = {}
        for idx, members in enumerate(krogan_small.complexes):
            for node in members:
                member_of[int(node)] = idx
        intra_probs, cross_probs = [], []
        for u, v, p in zip(graph.edge_src, graph.edge_dst, graph.edge_prob, strict=True):
            if member_of.get(int(u)) is not None and member_of.get(int(u)) == member_of.get(int(v)):
                intra_probs.append(p)
            else:
                cross_probs.append(p)
        assert np.mean(intra_probs) > np.mean(cross_probs)
