# Developer entry points. The package needs no build step; everything
# runs from src/ via PYTHONPATH.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test doctest bench bench-service serve docs docs-check lint clean

test:
	$(PYTHON) -m pytest -x -q

doctest:
	$(PYTHON) -m pytest --doctest-modules src/repro -q

bench:
	$(PYTHON) -m pytest -q benchmarks/test_bench_backends.py benchmarks/test_bench_sampling.py
	$(PYTHON) benchmarks/compare.py benchmarks/baselines/BENCH_sampling.json \
	    benchmarks/out/BENCH_sampling.json --fail-over 2.0

bench-service:
	$(PYTHON) -m pytest -q benchmarks/test_bench_service.py
	$(PYTHON) benchmarks/compare.py benchmarks/baselines/BENCH_service.json \
	    benchmarks/out/BENCH_service.json

# Run the clustering service on the default port with a local world cache.
serve:
	$(PYTHON) -m repro.cli serve --world-cache .world-cache

# API reference: always build the dependency-free Markdown reference
# (docs/api) — it doubles as the docstring/doctest syntax gate — and,
# when pdoc is installed, browsable HTML into docs/_build.
docs:
	$(PYTHON) docs/gen_api.py -o docs/api
	@if $(PYTHON) -c "import pdoc" 2>/dev/null; then \
	    $(PYTHON) -m pdoc --docformat numpy -o docs/_build repro; \
	else \
	    echo "pdoc not installed; skipped HTML build (docs/api has the Markdown reference)"; \
	fi

docs-check:
	$(PYTHON) docs/gen_api.py --check

lint:
	ruff check src tests benchmarks examples docs
	$(PYTHON) -m compileall -q src

clean:
	rm -rf docs/api docs/_build benchmarks/out
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
